//! Engine wiring: source, workers, collector, and the Fig. 5 controller.
//!
//! The data plane is batched end-to-end: the source routes and ships
//! tuples as [`Message::TupleBatch`]es from per-destination fan-out
//! accumulators (one channel send per destination per routed batch),
//! workers drain whole batches, and drained buffers recycle to the
//! source over a pool channel. Consistency: batches and migration
//! markers share each worker's FIFO channel, and the source only
//! acknowledges `Pause`/`Resume` between routed batches when its
//! accumulators are flushed, so every marker the controller sends after
//! an ack lands behind every batch the ack covered — the per-tuple
//! FIFO argument (see the crate docs) carries over verbatim with
//! "tuple" replaced by "batch".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Select, SendTimeoutError, Sender};
use streambal_core::{Key, Partitioner, RoutingView, TaskId};
use streambal_elastic::{
    choose_replicas, ElasticityPolicy, FixedSchedule, HoldPolicy, IntervalObservation,
    ScaleDecision, SplitDecision, SplitObservation, SplitPolicy,
};
use streambal_hashring::{FxHashMap, FxHashSet};
use streambal_metrics::{Counter, Histogram, RateMeter, TimeSeries};
use streambal_trace::{OpLabel, Outcome, Phase, ThreadLabel, ThreadRecorder, TraceLog, TraceSink};

use crate::controller::{ClosedRound, StatsLedger, WorkerSeconds};
use crate::fault::{next_live, CtlKind, FaultEvent, FaultInjector, FaultPlan, OpKind, SendPeer};
use crate::message::{Message, SourceCtl, SourceEvent, WorkerEvent};
use crate::operator::{Collector, Operator};
use crate::router::SourceRouter;
use crate::tuple::Tuple;
use crate::worker::{run_worker, WorkerCtx};

/// Engine sizing and behaviour knobs.
///
/// `Clone` but not `Copy`: the elasticity policy is a boxed, stateful
/// object (cloned with its state via `ElasticityPolicy::box_clone`).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Initial downstream parallelism `N_D`.
    pub n_workers: usize,
    /// Pre-provisioned worker slots (≥ `n_workers`; extra slots allow
    /// scale-out).
    pub max_workers: usize,
    /// Source → worker channel depth in *tuples*; a full channel
    /// backpressures the source (the paper's "backpushing effect").
    /// Batched sends are weighted by their tuple count
    /// (`send_weighted`), so the bound stays exactly tuple-denominated
    /// at any batch size and any fan-out fill — control markers weigh 1,
    /// as they did when every message was one tuple.
    pub channel_capacity: usize,
    /// Worker → collector channel depth in *tuples* (PKG's max-pending
    /// analogue), weighted like [`EngineConfig::channel_capacity`].
    pub collector_capacity: usize,
    /// Tuples staged per routed batch on the source thread — the
    /// data-plane batch. Each routed batch fans out into per-destination
    /// buffers shipped as one [`Message::TupleBatch`] per destination
    /// touched. The source drains pause/resume/view updates every
    /// `max(batch_size, 256)` staged tuples, bounding how many tuples can
    /// be routed under a stale view. `1` degenerates to scalar
    /// [`Message::Tuple`] sends — a one-tuple batch buys no amortization
    /// and would only pay the buffer indirection — so the batched plane
    /// never regresses below the seed shape at any batch size.
    pub batch_size: usize,
    /// Ship every tuple as an individual [`Message::Tuple`] with
    /// per-tuple clock reads and counter increments — the seed data
    /// plane, kept so benchmarks can measure the batched plane against
    /// it.
    pub per_tuple: bool,
    /// Busy-work iterations per tuple — calibrates per-tuple CPU cost so
    /// the workers saturate, as the paper's experiments arrange.
    pub spin_work: u32,
    /// State window `w` in intervals.
    pub window: usize,
    /// The elasticity policy consulted after every interval's statistics
    /// round: it decides `ScaleOut` / `ScaleIn` / `Hold`, and the
    /// controller executes the decision (spawn + state pre-placement for
    /// out — see [`EngineConfig::preplace`]; the drain → migrate → retire
    /// protocol for in — see `streambal-elastic` crate docs). Decisions
    /// are clamped to `[1, max_workers]`; scale-ins may queue up
    /// (multi-step re-provisioning executes them in order), while a
    /// scale-out arriving before queued retires finish is skipped,
    /// because the spawn slot must be the contiguous physical tail.
    /// Default: [`HoldPolicy`] (the static engine).
    pub elasticity: Box<dyn ElasticityPolicy>,
    /// The hot-key split policy consulted after every interval's
    /// statistics round, alongside [`EngineConfig::elasticity`]: it sees
    /// the merged per-key costs and the current split set and decides
    /// `Split` / `Unsplit` / `Hold`. The controller executes a split as
    /// a degenerate migration (routing-view change under a pause window,
    /// no state moved) and an unsplit as a real one (replica partials
    /// extracted and merged into the primary), both as first-class
    /// protocol ops with epochs, spans, and deadline/abort handling.
    /// Decisions the routing layer cannot honour (fewer than two tasks,
    /// an already-split key, a degenerate replica set) are skipped, not
    /// deferred. Default: `None` (never splits).
    pub split: Option<Box<dyn SplitPolicy>>,
    /// Pre-place state at scale-out (default `true`): the controller asks
    /// the partitioner for a migration plan
    /// (`Partitioner::scale_out_plan`) at provision time and executes it
    /// through the drain → migrate → resume machinery inside the
    /// scale-out quiescence window, so the new worker owns its keys — and
    /// takes their traffic — in the decision interval itself. `false`
    /// reproduces the seed behaviour (`Partitioner::scale_out` pins
    /// churned keys back to their old homes), where the new slot sits
    /// empty until the next rebalance migrates keys onto it — exactly the
    /// intervals the policy scaled out for.
    pub preplace: bool,
    /// Deterministic fault schedule for this run (default: none). See
    /// [`crate::fault`] — every fired fault and recovery action lands in
    /// [`EngineReport::faults`], and unrecoverable tuples are accounted
    /// per key in [`EngineReport::lost_tuples`].
    pub fault_plan: FaultPlan,
    /// Protocol-op deadline, interval-denominated: an in-flight
    /// `Pause`/`MigrateOut`/`StateInstall`/`Retire` phase showing no
    /// progress for this many source intervals *and*
    /// [`EngineConfig::op_deadline`] of wall time is retried once, then
    /// aborted with rollback. Intervals are the primary clock (they are
    /// deterministic per run); the wall bound keeps healthy-but-slow
    /// runs from spurious expiry and takes over alone once the source
    /// has finished and intervals stop.
    pub op_deadline_intervals: u64,
    /// Wall-clock component of the op deadline (see above).
    pub op_deadline: Duration,
    /// Stats-round deadline, interval-denominated: a round still
    /// missing reporters after this many further intervals *and*
    /// [`EngineConfig::round_deadline`] of wall time closes with what
    /// it has (the missing reporters are recorded in the fault ledger),
    /// so a dead or wedged worker cannot hold statistics — or shutdown,
    /// which waits on open rounds — hostage.
    pub round_deadline_intervals: u64,
    /// Wall-clock component of the round deadline (see above).
    pub round_deadline: Duration,
    /// Flight recorder on/off (default `true`). When on, every thread
    /// carries a [`streambal_trace::ThreadRecorder`]: the controller
    /// records protocol-phase spans and per-interval telemetry
    /// snapshots, the source records routing-table shape and interval
    /// totals, and workers roll batch counters into one `DataFlush`
    /// per interval — nothing per tuple, no locks or clock reads on the
    /// data plane. The merged log lands in [`EngineReport::trace`].
    /// `false` makes every recording call a no-op (the overhead
    /// benchmark's baseline).
    pub trace: bool,
}

impl EngineConfig {
    /// Whether the data plane ships scalar [`Message::Tuple`]s: the
    /// explicit seed shape, or `batch_size ≤ 1` (a one-tuple batch buys
    /// no amortization).
    fn scalar_plane(&self) -> bool {
        self.per_tuple || self.batch_size <= 1
    }

    /// Back-compat constructor for the retired `scale_out_at` knob: the
    /// default config with one pre-provisioned spare slot and a
    /// [`FixedSchedule`] adding one worker after `interval`'s statistics
    /// are collected — behaviourally identical to the old field.
    pub fn with_scale_out_at(interval: u64) -> Self {
        let base = EngineConfig::default();
        EngineConfig {
            max_workers: base.n_workers + 1,
            elasticity: Box::new(FixedSchedule::scale_out_at(interval)),
            ..base
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_workers: 4,
            max_workers: 4,
            channel_capacity: 1024,
            collector_capacity: 256,
            batch_size: 256,
            per_tuple: false,
            spin_work: 500,
            window: 5,
            elasticity: Box::new(HoldPolicy),
            split: None,
            preplace: true,
            fault_plan: FaultPlan::none(),
            op_deadline_intervals: 4,
            op_deadline: Duration::from_secs(5),
            round_deadline_intervals: 4,
            round_deadline: Duration::from_secs(5),
            trace: true,
        }
    }
}

pub use streambal_elastic::{ScaleEvent, SplitEvent};

/// A survivable violation of the pause → migrate → resume protocol.
///
/// Each variant pins the event the controller observed with no matching
/// in-flight op (or the auxiliary thread that died), plus what was
/// dropped or skipped as a result. `Display` renders the exact
/// diagnostic strings these carried when [`EngineReport::protocol_errors`]
/// was a `Vec<String>`, so log scrapers and test messages are unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A source `PauseAck` arrived with nothing in flight and no closed
    /// epoch to absorb it.
    StrayPauseAck {
        /// The ack's epoch.
        epoch: u64,
    },
    /// A worker shipped extracted state for an epoch with no migration
    /// in flight; the blobs were dropped.
    StrayStateOut {
        /// The shipping worker's slot.
        worker: usize,
        /// The orphaned epoch.
        epoch: u64,
        /// How many key states were dropped with it.
        dropped_keys: usize,
    },
    /// A worker acknowledged a `StateInstall` for an epoch with no
    /// pending op.
    StrayInstallAck {
        /// The acking worker's slot.
        worker: usize,
        /// The orphaned epoch.
        epoch: u64,
    },
    /// A worker completed retirement for an epoch with no pending
    /// scale-in.
    StrayRetired {
        /// The retiring worker's slot.
        worker: usize,
        /// The orphaned epoch.
        epoch: u64,
    },
    /// A scale-out decision found the spawn slot's receiver missing (a
    /// prior retire mismatch); the engine kept its current width.
    ScaleOutAborted {
        /// The parallelism the decision aimed for.
        to: usize,
        /// The slot with no channel to hand out.
        slot: usize,
    },
    /// An auxiliary thread (source, throughput sampler, collector)
    /// panicked; the run completed without it.
    ThreadPanicked {
        /// Which thread: `"source"`, `"throughput sampler"`, or
        /// `"collector"`.
        thread: &'static str,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::StrayPauseAck { epoch } => {
                write!(f, "PauseAck for epoch {epoch} with no pending op")
            }
            ProtocolError::StrayStateOut {
                worker,
                epoch,
                dropped_keys,
            } => write!(
                f,
                "StateOut from worker {worker} for epoch {epoch} with no \
                 migration in flight; {dropped_keys} key states dropped"
            ),
            ProtocolError::StrayInstallAck { worker, epoch } => write!(
                f,
                "InstallAck from worker {worker} for epoch {epoch} with no pending op"
            ),
            ProtocolError::StrayRetired { worker, epoch } => write!(
                f,
                "Retired from worker {worker} for epoch {epoch} with no pending scale-in"
            ),
            ProtocolError::ScaleOutAborted { to, slot } => write!(
                f,
                "scale-out to {to} aborted: worker slot {slot} has no channel to hand out"
            ),
            ProtocolError::ThreadPanicked { thread } => {
                write!(f, "{thread} thread panicked")
            }
        }
    }
}

/// Everything one engine run measured.
#[derive(Debug)]
pub struct EngineReport {
    /// Partitioner name.
    pub name: String,
    /// Total tuples processed by all workers.
    pub processed: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Mean throughput, tuples/second.
    pub mean_throughput: f64,
    /// Wall-clock-sampled throughput series (seconds, tuples/s).
    pub throughput: TimeSeries,
    /// Per-interval throughput series (interval, tuples/s).
    pub interval_throughput: TimeSeries,
    /// End-to-end tuple latency distribution (µs), merged over workers.
    pub latency_us: Histogram,
    /// Rebalances executed.
    pub rebalances: usize,
    /// Keys migrated across all rebalances.
    pub migrated_keys: u64,
    /// State bytes migrated across all rebalances.
    pub migrated_bytes: u64,
    /// Tuples processed per worker slot (summed across respawns when a
    /// slot is retired and later re-provisioned).
    pub per_worker_processed: Vec<u64>,
    /// All key state at shutdown (sorted by key) for validation.
    pub final_states: Vec<(Key, Bytes)>,
    /// The collector's result rows, if a collector ran.
    pub collector_result: Vec<(u64, u64)>,
    /// Executed elasticity decisions, in order.
    pub scale_events: Vec<ScaleEvent>,
    /// Executed hot-key split/unsplit decisions, in order (empty when
    /// [`EngineConfig::split`] is `None`). Comparable `==` against the
    /// simulator's trace, like [`EngineReport::scale_events`].
    pub split_events: Vec<SplitEvent>,
    /// Integral of live workers over wall time (the provisioning cost an
    /// elastic policy saves against a static peak-sized deployment).
    pub worker_seconds: f64,
    /// Per slot: the earliest interval a worker on that slot processed a
    /// tuple (`None` if the slot never saw traffic). For a scaled-out
    /// slot, `first − decision_interval` is its time-to-first-tuple in
    /// intervals — the cold-start lag pre-placement closes.
    pub first_tuple_interval: Vec<Option<u64>>,
    /// Violations of the pause→migrate→resume protocol the controller
    /// observed and survived: an ack or state transfer arriving with no
    /// matching in-flight op, a scale-out slot with no receiver, an
    /// auxiliary thread that panicked. Each entry names the event and
    /// what was dropped or skipped. The controller used to panic on
    /// these (poisoning every channel and deadlocking the topology
    /// mid-protocol); now the run completes and the report carries the
    /// evidence — **empty on every healthy run**, and tests assert so.
    /// Each [`ProtocolError`]'s `Display` is the diagnostic string this
    /// field used to carry verbatim.
    pub protocol_errors: Vec<ProtocolError>,
    /// The fault ledger: every injected fault that fired and every
    /// recovery action the controller took (deaths, re-routes, op
    /// retries/aborts, timed-out stats rounds). Structural entries only
    /// — replaying the same [`EngineConfig::fault_plan`] yields the
    /// same ledger (see [`crate::fault`]). Empty on every healthy run.
    pub faults: Vec<FaultEvent>,
    /// Per-key tuple counts irrecoverably lost to worker deaths (held
    /// state, un-flushed partials, and in-flight messages drained from
    /// a dead worker's channel), sorted by key. The accounting
    /// invariant chaos tests assert: `fed − lost == observed`. Empty on
    /// every healthy run.
    pub lost_tuples: Vec<(Key, u64)>,
    /// The flight-recorder log (empty when [`EngineConfig::trace`] is
    /// off): protocol-phase spans keyed by op epoch, per-interval
    /// telemetry snapshots, per-worker data-flush counters, and a
    /// mirror of every fault-ledger entry. Deterministic modulo
    /// wall-clock — [`TraceLog::skeleton`] of a seeded run reproduces
    /// exactly across replays, like [`EngineReport::faults`].
    pub trace: TraceLog,
}

/// Keeps the earliest first-tuple interval across a slot's successive
/// occupants (a retired slot can be re-provisioned mid-run).
fn merge_first(slot: &mut Option<u64>, seen: Option<u64>) {
    *slot = match (*slot, seen) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    };
}

/// A planned migration waiting its turn (one in flight at a time).
struct PlannedMigration {
    /// Moves grouped by source worker.
    by_source: FxHashMap<TaskId, Vec<(Key, TaskId)>>,
    affected: Vec<Key>,
    view: RoutingView,
    /// A scale-out pre-placement plan (vs. a rebalance): its
    /// `migrated_bytes` are billed from the *actual* extracted blobs at
    /// `StateOut` — the plan covers windowed state a single interval's
    /// statistics cannot size — where a rebalance is billed up front
    /// from its plan's windowed-mem estimate, as always.
    preplaced: bool,
    /// What the op's flight-recorder span is labelled: `ScaleOut`,
    /// `Rebalance`, `Split` (degenerate: empty `by_source`), or
    /// `Unsplit` (replica partials consolidating into the primary).
    label: OpLabel,
}

/// A control-plane operation queued behind the in-flight one. Migrations
/// and scale-ins serialize through the same queue, so state placement
/// always advances one routing-function delta at a time — each op moves
/// state from the previous op's placement to its own captured view.
enum PlannedOp {
    /// A rebalance migration (Fig. 5).
    Migrate(PlannedMigration),
    /// Retire `victim` (always the then-highest slot) under `view`, the
    /// routing function captured right after `Partitioner::scale_in`.
    ScaleIn { victim: TaskId, view: RoutingView },
}

impl PlannedOp {
    fn is_scale_in(&self) -> bool {
        matches!(self, PlannedOp::ScaleIn { .. })
    }
}

/// An in-flight migration epoch.
struct ActiveMigration {
    epoch: u64,
    plan: PlannedMigration,
    /// Whether the source acknowledged the pause — the phase a deadline
    /// retry must re-drive when false.
    pause_acked: bool,
    awaiting_out: FxHashSet<TaskId>,
    collected: Vec<(Key, TaskId, Bytes)>,
    awaiting_install: FxHashSet<TaskId>,
    /// Installs already sent, kept for idempotent deadline resends (the
    /// worker dedupes by epoch) and for rollback accounting. `Bytes`
    /// blobs are refcounted, so the clones are cheap.
    sent_installs: FxHashMap<TaskId, Vec<(Key, Bytes)>>,
    /// Whether the span's `StateOut` phase marker was recorded (at the
    /// first live extraction) — phases are recorded exactly once;
    /// deadline re-drives and duplicate answers must not repeat them.
    state_out_marked: bool,
}

/// An in-flight scale-in: pause-dest → retire → re-install → resume.
struct ActiveRetire {
    epoch: u64,
    victim: TaskId,
    view: RoutingView,
    pause_acked: bool,
    /// Whether the Retire marker went out (deadline retries resend it —
    /// the victim answers the first one it sees; a duplicate lands on a
    /// drained channel and is discarded with it).
    retire_sent: bool,
    awaiting_install: FxHashSet<TaskId>,
    sent_installs: FxHashMap<TaskId, Vec<(Key, Bytes)>>,
}

/// The one control-plane operation in flight.
enum ActiveOp {
    Migration(ActiveMigration),
    Retire(ActiveRetire),
}

impl ActiveOp {
    fn is_scale_in(&self) -> bool {
        matches!(self, ActiveOp::Retire(_))
    }
}

/// Deadline clock for the one in-flight op: reset on every phase
/// progress, compared against the interval count *and* wall time (see
/// [`EngineConfig::op_deadline_intervals`]).
struct OpClock {
    started: Instant,
    started_interval: u64,
    /// One retry per phase-stall; the second expiry aborts.
    retried: bool,
}

impl OpClock {
    fn start(interval: u64) -> Self {
        OpClock {
            started: Instant::now(),
            started_interval: interval,
            retried: false,
        }
    }
}

/// An outstanding source resume: the view to re-drive it with and its
/// deadline clock. Resumes are retried but never aborted — an abandoned
/// resume would leave pause-buffered tuples unflushed, which is
/// unaccounted loss; and the source cannot have died (it runs the
/// resume handler) short of the whole engine tearing down.
struct ResumeClock {
    view: RoutingView,
    started: Instant,
    started_interval: u64,
    retried: bool,
}

/// Longest the controller will wait for room in a worker's channel. A
/// live worker drains continuously, so a one-unit slot opens in well
/// under this; only a worker that died with a full queue (its `Killed`
/// event still in flight) keeps the channel full for the whole bound.
const CTL_SEND_TIMEOUT: Duration = Duration::from_millis(100);

/// Bounded-wait control send to worker slot `w`. The controller must
/// never block indefinitely against a worker channel: the worker may
/// have died with a full queue before its `Killed` event was processed,
/// and a wedged controller can drain neither that event nor the dead
/// channel. A timeout is treated like a message lost in flight — the
/// deadline machinery re-drives it; a disconnect is recorded.
fn ctl_send(injector: &FaultInjector, tx: &Sender<Message>, w: usize, msg: Message) -> bool {
    match tx.send_timeout(msg, CTL_SEND_TIMEOUT) {
        Ok(()) => true,
        Err(SendTimeoutError::Timeout(_)) => false,
        Err(SendTimeoutError::Disconnected(_)) => {
            injector.record(FaultEvent::SendFailed {
                to: SendPeer::Worker(w),
            });
            false
        }
    }
}

/// Sends a control marker to worker `w` through the drop gate. Returns
/// false when the message did not reach the channel — injected drop
/// (proceed as if lost in flight; the deadline machinery recovers), a
/// full channel that never opened (same recovery), or a disconnected
/// receiver, which is recorded as a failed send.
fn send_ctl_marker(
    injector: &FaultInjector,
    txs: &[Sender<Message>],
    w: usize,
    kind: CtlKind,
    msg: Message,
) -> bool {
    if !injector.is_passive() && injector.should_drop(kind) {
        return false;
    }
    ctl_send(injector, &txs[w], w, msg)
}

/// Drains whatever currently sits in a dead worker's channel, counting
/// every in-flight tuple and state blob into the per-key loss map;
/// returns the total drained. Called repeatedly while the source may
/// still be routing at the slot — a bounded channel left un-drained
/// would fill and backpressure the source against a corpse — and one
/// final time when the source acknowledges the death.
fn drain_dead_channel(
    rx: &Receiver<Message>,
    sop: &mut dyn Operator,
    lost: &mut FxHashMap<Key, u64>,
) -> u64 {
    let mut n_lost = 0u64;
    while let Ok(msg) = rx.try_recv() {
        match msg {
            Message::Tuple(t) => {
                *lost.entry(t.key).or_insert(0) += 1;
                n_lost += 1;
            }
            Message::TupleBatch(batch) => {
                for t in &batch {
                    *lost.entry(t.key).or_insert(0) += 1;
                    n_lost += 1;
                }
            }
            Message::StateInstall { states, .. } => {
                for (k, blob) in states {
                    let n = sop.tuples_in_blob(&blob);
                    *lost.entry(k).or_insert(0) += n;
                    n_lost += n;
                }
            }
            _ => {}
        }
    }
    n_lost
}

/// Issues (or re-issues on a fresh epoch) a source resume and arms its
/// deadline clock. A resume dropped by the injector is indistinguishable
/// from a slow one; the clock re-drives it. When the epoch still has an
/// open trace span (normal completion — aborted spans are closed before
/// their rollback resume), the span's `Resume` phase is recorded here,
/// once: deadline re-drives bypass this function.
#[allow(clippy::too_many_arguments)]
fn issue_resume(
    injector: &FaultInjector,
    ctl_tx: &Sender<SourceCtl>,
    resume_state: &mut FxHashMap<u64, ResumeClock>,
    rec: &mut ThreadRecorder,
    open_spans: &FxHashSet<u64>,
    epoch: u64,
    view: RoutingView,
    current_interval: u64,
) {
    if open_spans.contains(&epoch) {
        rec.span_phase(epoch, Phase::Resume);
    }
    send_src(
        injector,
        ctl_tx,
        Some(CtlKind::Resume),
        SourceCtl::Resume {
            epoch,
            view: view.clone(),
        },
    );
    resume_state.insert(
        epoch,
        ResumeClock {
            view,
            started: Instant::now(),
            started_interval: current_interval,
            retried: false,
        },
    );
}

/// Sends a source control message, drop-gating it when `kind` names a
/// droppable control kind (view updates and shutdown are never dropped:
/// losing them models nothing a real network loses independently of the
/// protocol messages around them).
fn send_src(
    injector: &FaultInjector,
    ctl_tx: &Sender<SourceCtl>,
    kind: Option<CtlKind>,
    msg: SourceCtl,
) -> bool {
    if let Some(k) = kind {
        if !injector.is_passive() && injector.should_drop(k) {
            return false;
        }
    }
    if ctl_tx.send(msg).is_err() {
        injector.record(FaultEvent::SendFailed {
            to: SendPeer::Source,
        });
        return false;
    }
    true
}

/// Shared ingredients for spawning worker threads (initially and on
/// scale-out).
struct WorkerSpawner {
    event_tx: Sender<WorkerEvent>,
    col_tx: Option<Sender<Vec<Tuple>>>,
    pool_tx: Sender<Vec<Vec<Tuple>>>,
    spin_work: u32,
    window: u64,
    emit_batch: usize,
    counter: Arc<Counter>,
    epoch: Instant,
    injector: Arc<FaultInjector>,
    sink: Arc<TraceSink>,
}

impl WorkerSpawner {
    fn spawn<'scope>(
        &self,
        s: &'scope std::thread::Scope<'scope, '_>,
        id: usize,
        rx: Receiver<Message>,
        op: Box<dyn Operator>,
        start_interval: u64,
    ) {
        let ctx = WorkerCtx {
            id: TaskId::from(id),
            rx,
            events: self.event_tx.clone(),
            collector: self.col_tx.clone(),
            op,
            spin_work: self.spin_work,
            window: self.window,
            processed_counter: Arc::clone(&self.counter),
            epoch: self.epoch,
            start_interval,
            pool: self.pool_tx.clone(),
            emit_batch: self.emit_batch,
            injector: Arc::clone(&self.injector),
            recorder: self.sink.recorder(ThreadLabel::Worker(id as u32)),
        };
        s.spawn(move || run_worker(ctx));
    }
}

/// The engine: call [`Engine::run`].
pub struct Engine;

impl Engine {
    /// Runs a topology to completion and returns the report.
    ///
    /// * `partitioner` — the routing strategy under test (owned by the
    ///   controller, which runs on the calling thread).
    /// * `op_factory` — builds the keyed operator for each worker slot.
    /// * `feeder` — called with the interval index on the source thread;
    ///   returns that interval's tuples, or `None` to finish.
    /// * `collector` — optional downstream stage receiving operator
    ///   emissions (PKG merger, Q5 aggregation).
    pub fn run<F, OF>(
        config: EngineConfig,
        mut partitioner: Box<dyn Partitioner>,
        mut op_factory: OF,
        feeder: F,
        collector: Option<Box<dyn Collector>>,
    ) -> EngineReport
    where
        F: FnMut(u64) -> Option<Vec<Tuple>> + Send,
        OF: FnMut(TaskId) -> Box<dyn Operator>,
    {
        let t0 = Instant::now();
        let max_workers = config.max_workers.max(config.n_workers);
        assert!(config.n_workers >= 1, "need at least one worker");
        assert_eq!(
            partitioner.n_tasks(),
            config.n_workers,
            "partitioner and engine must agree on initial parallelism"
        );

        // Channels. Capacities are tuple-denominated: batch sends are
        // weighted by their tuple count, so the in-flight bound — the
        // backpushing effect — is exactly what the config documents at
        // any batch size and any fan-out fill.
        let mut worker_txs: Vec<Sender<Message>> = Vec::with_capacity(max_workers);
        let mut worker_rxs: Vec<Option<Receiver<Message>>> = Vec::with_capacity(max_workers);
        for _ in 0..max_workers {
            let (tx, rx) = bounded(config.channel_capacity);
            worker_txs.push(tx);
            worker_rxs.push(Some(rx));
        }
        let (event_tx, event_rx) = unbounded::<WorkerEvent>();
        let (ctl_tx, ctl_rx) = unbounded::<SourceCtl>();
        let (src_evt_tx, src_evt_rx) = unbounded::<SourceEvent>();
        let (col_tx, col_rx) = bounded::<Vec<Tuple>>(config.collector_capacity);
        // Batch-buffer free list: workers (and the collector) return
        // drained `Vec<Tuple>`s here — in groups, amortizing the channel
        // lock — and the source reuses them, so the steady-state data
        // plane allocates nothing per batch.
        let (pool_tx, pool_rx) = unbounded::<Vec<Vec<Tuple>>>();

        let counter = Arc::new(Counter::new());
        let stop = Arc::new(AtomicBool::new(false));
        let has_collector = collector.is_some();

        let name = partitioner.name();
        let initial_view = partitioner.routing_view();

        let mut report = EngineReport {
            name,
            processed: 0,
            wall: Duration::ZERO,
            mean_throughput: 0.0,
            throughput: TimeSeries::labelled("throughput"),
            interval_throughput: TimeSeries::labelled("interval throughput"),
            latency_us: Histogram::new(),
            rebalances: 0,
            migrated_keys: 0,
            migrated_bytes: 0,
            per_worker_processed: vec![0; max_workers],
            final_states: Vec::new(),
            collector_result: Vec::new(),
            scale_events: Vec::new(),
            split_events: Vec::new(),
            worker_seconds: 0.0,
            first_tuple_interval: vec![None; max_workers],
            protocol_errors: Vec::new(),
            faults: Vec::new(),
            lost_tuples: Vec::new(),
            trace: TraceLog::default(),
        };

        // One flight-recorder sink per run; every thread gets its own
        // lock-free ThreadRecorder view of it.
        let sink = TraceSink::new(config.trace);
        // One injector per run, shared with the source loop and every
        // worker. Drop ordinals are global (each kind is sent from one
        // thread), so all sites must share this instance. The sink lets
        // it mirror each ledger entry into the trace as it is recorded.
        let injector = Arc::new(FaultInjector::with_trace(
            config.fault_plan.clone(),
            Arc::clone(&sink),
        ));

        std::thread::scope(|s| {
            // --- workers -------------------------------------------------
            let spawner = WorkerSpawner {
                event_tx: event_tx.clone(),
                col_tx: has_collector.then(|| col_tx.clone()),
                pool_tx: pool_tx.clone(),
                spin_work: config.spin_work,
                window: config.window as u64,
                emit_batch: config.batch_size.max(1),
                counter: Arc::clone(&counter),
                epoch: t0,
                injector: Arc::clone(&injector),
                sink: Arc::clone(&sink),
            };
            for (d, slot) in worker_rxs.iter_mut().enumerate().take(config.n_workers) {
                // lint: allow(panic, reason = "startup invariant: every slot was
                // filled Some(rx) in the channel-construction loop above and
                // nothing has taken from them yet")
                let rx = slot.take().expect("slot free");
                spawner.spawn(s, d, rx, op_factory(TaskId::from(d)), 0);
            }

            // --- merge stage (the downstream operator) --------------------
            let col_handle = collector.map(|c| {
                let stage = crate::merge::MergeStage::new(
                    c,
                    col_rx,
                    pool_tx.clone(),
                    sink.recorder(ThreadLabel::Collector),
                );
                s.spawn(move || stage.run())
            });

            // --- throughput sampler ---------------------------------------
            let sampler = {
                let counter = Arc::clone(&counter);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let meter = RateMeter::new();
                    let mut series = TimeSeries::labelled("throughput");
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(50));
                        meter.sample(&counter);
                    }
                    for &(t, v) in &meter.series() {
                        series.push(t, v);
                    }
                    series
                })
            };

            // --- source ---------------------------------------------------
            let src_worker_txs = worker_txs.clone();
            let src_config = config.clone();
            let src_injector = Arc::clone(&injector);
            let src_rec = sink.recorder(ThreadLabel::Source);
            let src_handle = s.spawn(move || {
                source_loop(
                    feeder,
                    initial_view,
                    src_worker_txs,
                    ctl_rx,
                    src_evt_tx,
                    pool_rx,
                    t0,
                    src_config,
                    src_injector,
                    src_rec,
                )
            });

            // --- controller (this thread) ----------------------------------
            let mut policy = config.elasticity.clone();
            let mut split_policy = config.split.clone();
            let mut active = config.n_workers;
            let mut pending: Option<ActiveOp> = None;
            let mut queue: VecDeque<PlannedOp> = VecDeque::new();
            let mut next_epoch = 0u64;
            // The statistics-round ledger (see `controller.rs`): open
            // rounds, retired-victim residue, and graceful handling of
            // late or duplicate reports. The expected count is pinned at
            // issue time — scale-out must not retroactively change how
            // many workers a round waits for, and a victim whose Retire
            // marker is already enqueued is excluded because it will
            // never answer.
            let mut ledger = StatsLedger::new();
            // Outstanding source resumes, keyed by epoch: the view to
            // re-drive each with and its deadline clock. Resumes retry
            // forever (never abort — an abandoned resume would leave
            // pause-buffered tuples unflushed, which is unaccounted
            // loss); a duplicate ack is absorbed by the missing key.
            let mut resume_state: FxHashMap<u64, ResumeClock> = FxHashMap::default();
            // Set between sending a `Retire` marker and its `Retired` ack.
            let mut retiring: Option<TaskId> = None;
            let mut source_finished = false;
            let mut draining = false;
            let mut drained = 0usize;
            // Shutdown markers actually delivered (dead slots and failed
            // sends are excluded — they will never answer `Drained`).
            let mut drain_target = 0usize;
            let mut last_interval_mark = (Instant::now(), 0u64);
            // Worker-seconds integral, advanced at every change of the
            // *live* count (and closed once at shutdown).
            let mut ws = WorkerSeconds::new(t0, config.n_workers);
            // --- fault-recovery state ------------------------------------
            // Dead worker slots (indices < active). `active` never
            // shrinks on a death: the routing function still counts the
            // slot, the source diverts its traffic to survivors, and a
            // later scale-out decision re-provisions it (SlotRevived).
            let mut dead: FxHashSet<usize> = FxHashSet::default();
            // A dead worker's receiver, held until the source
            // acknowledges the re-route; then drained (every in-flight
            // tuple counted lost) and dropped, so later sends fail fast.
            let mut dead_pending: FxHashMap<usize, Receiver<Message>> = FxHashMap::default();
            // Per-key tuples irrecoverably lost to deaths.
            let mut lost: FxHashMap<Key, u64> = FxHashMap::default();
            // The deterministic half of every deadline: the latest
            // source interval observed.
            let mut current_interval = 0u64;
            // Deadline clock for the one in-flight op; re-armed on every
            // phase progress.
            let mut op_clock: Option<OpClock> = None;
            // Epochs that finished, aborted, or were synthesized for
            // rollback installs: late echoes (a retried op's duplicate
            // ack, a zombie victim's `Retired`) are absorbed as stale
            // instead of counted as protocol errors.
            let mut closed_epochs: FxHashMap<u64, &'static str> = FxHashMap::default();
            // Lazily-built operator used only to size state blobs drained
            // from a dead worker's channel (loss accounting).
            let mut scratch_op: Option<Box<dyn Operator>> = None;
            // Completed stats rounds awaiting the decision block — filled
            // by reports, dead-worker strikes, and deadline expiry alike,
            // so every round is decided by exactly one code path.
            let mut closed_rounds: Vec<(u64, ClosedRound)> = Vec::new();
            // The controller's flight recorder: protocol spans (id = op
            // epoch) and per-interval telemetry snapshots.
            let mut rec = sink.recorder(ThreadLabel::Controller);
            // Epochs whose span is open: a span closes `Completed` at its
            // ResumeAck, `Aborted` at abort_op, `Abandoned` at teardown —
            // exactly once, whichever comes first.
            let mut open_spans: FxHashSet<u64> = FxHashSet::default();

            let mut select = Select::new();
            let src_idx = select.recv(&src_evt_rx);
            let _evt_idx = select.recv(&event_rx);

            'ctl: loop {
                // Bounded wait: the bottom half of the loop (deadline
                // retries/aborts, stats-round expiry, the shutdown gate)
                // must run even when no event arrives.
                if let Ok(op_ready) = select.select_timeout(Duration::from_millis(10)) {
                    match op_ready.index() {
                        i if i == src_idx => {
                            let Ok(ev) = op_ready.recv(&src_evt_rx) else {
                                continue;
                            };
                            match ev {
                                SourceEvent::IntervalDone { interval } => {
                                    current_interval = interval;
                                    // Interval throughput point.
                                    let now = Instant::now();
                                    let count = counter.get();
                                    let dt = now
                                        .duration_since(last_interval_mark.0)
                                        .as_secs_f64()
                                        .max(1e-9);
                                    report.interval_throughput.push(
                                        interval as f64,
                                        (count - last_interval_mark.1) as f64 / dt,
                                    );
                                    last_interval_mark = (now, count);
                                    // Queue depths sampled at interval close
                                    // (tuple-weighted channel occupancy, the
                                    // backpressure signal), *before* the stats
                                    // markers join the queues they measure.
                                    let queues: Vec<u64> = worker_txs
                                        .iter()
                                        .take(active)
                                        .map(|tx| tx.queued_weight() as u64)
                                        .collect();
                                    // In-band stats round, skipping a retiring
                                    // victim (its Retire marker is already in
                                    // the channel ahead of this request) and
                                    // dead slots. A request dropped by the
                                    // injector stays *expected* — the
                                    // controller cannot know it was lost in
                                    // flight; the round deadline closes it.
                                    let mut expected: Vec<TaskId> = Vec::new();
                                    for (i, tx) in worker_txs.iter().enumerate().take(active) {
                                        if retiring == Some(TaskId::from(i)) || dead.contains(&i) {
                                            continue;
                                        }
                                        if !injector.is_passive()
                                            && injector.should_drop(CtlKind::StatsRequest)
                                        {
                                            expected.push(TaskId::from(i));
                                            continue;
                                        }
                                        if !ctl_send(
                                            &injector,
                                            tx,
                                            i,
                                            Message::StatsRequest { interval },
                                        ) {
                                            continue;
                                        }
                                        expected.push(TaskId::from(i));
                                    }
                                    if !expected.is_empty() {
                                        ledger.open(interval, active, expected, queues);
                                    }
                                }
                                SourceEvent::PauseAck { epoch } => {
                                    let resume_now = match pending.as_mut() {
                                        None => {
                                            // A pause ack with nothing in
                                            // flight: a late echo of a closed
                                            // epoch (absorbed), or genuine
                                            // protocol desync (recorded).
                                            if closed_epochs.contains_key(&epoch) {
                                                injector.record(FaultEvent::StaleEpochAbsorbed {
                                                    epoch,
                                                    what: "pause ack",
                                                });
                                            } else {
                                                report
                                                    .protocol_errors
                                                    .push(ProtocolError::StrayPauseAck { epoch });
                                            }
                                            None
                                        }
                                        Some(ActiveOp::Migration(m)) if m.epoch == epoch => {
                                            if m.pause_acked {
                                                // Duplicate (the pause was
                                                // retried but the original ack
                                                // was merely slow, not lost).
                                                injector.record(FaultEvent::StaleEpochAbsorbed {
                                                    epoch,
                                                    what: "pause ack",
                                                });
                                                None
                                            } else {
                                                m.pause_acked = true;
                                                op_clock = Some(OpClock::start(current_interval));
                                                // The source is quiesced; the
                                                // span now waits on holders to
                                                // drain and extract.
                                                rec.span_phase(epoch, Phase::QuiesceWait);
                                                for (&w, moves) in &m.plan.by_source {
                                                    // A holder that died after
                                                    // planning has nothing left
                                                    // to extract (its loss is
                                                    // already accounted).
                                                    if dead.contains(&w.index()) {
                                                        continue;
                                                    }
                                                    m.awaiting_out.insert(w);
                                                    // Dropped markers stay
                                                    // awaited: the op deadline
                                                    // re-drives them.
                                                    send_ctl_marker(
                                                        &injector,
                                                        &worker_txs,
                                                        w.index(),
                                                        CtlKind::MigrateOut,
                                                        Message::MigrateOut {
                                                            epoch,
                                                            moves: moves.clone(),
                                                        },
                                                    );
                                                }
                                                // Degenerate plan: resume immediately.
                                                m.awaiting_out
                                                    .is_empty()
                                                    .then(|| m.plan.view.clone())
                                            }
                                        }
                                        Some(ActiveOp::Retire(r)) if r.epoch == epoch => {
                                            if r.pause_acked {
                                                injector.record(FaultEvent::StaleEpochAbsorbed {
                                                    epoch,
                                                    what: "pause ack",
                                                });
                                            } else {
                                                r.pause_acked = true;
                                                op_clock = Some(OpClock::start(current_interval));
                                                rec.span_phase(epoch, Phase::QuiesceWait);
                                                // Every tuple the source will ever
                                                // send the victim is now in its
                                                // channel; the Retire marker lands
                                                // behind all of them. A dropped
                                                // marker is re-driven by the op
                                                // deadline.
                                                send_ctl_marker(
                                                    &injector,
                                                    &worker_txs,
                                                    r.victim.index(),
                                                    CtlKind::Retire,
                                                    Message::Retire { epoch },
                                                );
                                                r.retire_sent = true;
                                                retiring = Some(r.victim);
                                            }
                                            None
                                        }
                                        Some(_) => {
                                            injector.record(FaultEvent::StaleEpochAbsorbed {
                                                epoch,
                                                what: "pause ack",
                                            });
                                            None
                                        }
                                    };
                                    if let Some(view) = resume_now {
                                        issue_resume(
                                            &injector,
                                            &ctl_tx,
                                            &mut resume_state,
                                            &mut rec,
                                            &open_spans,
                                            epoch,
                                            view,
                                            current_interval,
                                        );
                                        closed_epochs.insert(epoch, "done");
                                        pending = None;
                                        op_clock = None;
                                    }
                                }
                                SourceEvent::ResumeAck { epoch } => {
                                    if resume_state.remove(&epoch).is_none() {
                                        injector.record(FaultEvent::StaleEpochAbsorbed {
                                            epoch,
                                            what: "resume ack",
                                        });
                                    } else if open_spans.remove(&epoch) {
                                        // The op's span runs to the ack: its
                                        // disruption window covers the whole
                                        // pause → ... → resume round trip.
                                        // (Aborted spans closed at abort_op;
                                        // their rollback resume's ack lands
                                        // here with the span already gone.)
                                        rec.span_close(epoch, Outcome::Completed);
                                    }
                                }
                                SourceEvent::DeadDestAck { dest } => {
                                    // The source has stopped routing to the
                                    // dead slot; drain its channel (counting
                                    // every in-flight tuple and state blob as
                                    // lost) and drop the receiver so any
                                    // later send fails fast instead of
                                    // queueing into a void.
                                    if let Some(rx) = dead_pending.remove(&dest.index()) {
                                        let sop =
                                            scratch_op.get_or_insert_with(|| op_factory(dest));
                                        let n = drain_dead_channel(&rx, sop.as_mut(), &mut lost);
                                        injector.add_lost(n);
                                    }
                                }
                                SourceEvent::SendFailed { dest } => {
                                    // The source hit a disconnected channel
                                    // before (or after) the controller's
                                    // DeadDest reached it; the tuples were
                                    // re-shipped to a survivor, so this is an
                                    // observation, not a loss.
                                    injector.record(FaultEvent::SendFailed {
                                        to: SendPeer::Worker(dest.index()),
                                    });
                                }
                                SourceEvent::Finished => {
                                    source_finished = true;
                                }
                            }
                        }
                        _ => {
                            let Ok(ev) = op_ready.recv(&event_rx) else {
                                continue;
                            };
                            match ev {
                                WorkerEvent::Stats {
                                    worker,
                                    interval,
                                    stats,
                                    latency,
                                } => {
                                    // The ledger absorbs late and duplicate
                                    // reports (a retiring worker can answer a
                                    // round the controller already closed)
                                    // instead of crashing; a report only
                                    // completes a round when every distinct
                                    // expected worker has answered. Completed
                                    // rounds queue for the decision pass at
                                    // the bottom of the loop — the same path
                                    // that decides rounds closed by a death
                                    // or by deadline expiry.
                                    if let Some(round) =
                                        ledger.on_stats(worker, interval, stats, &latency)
                                    {
                                        closed_rounds.push((interval, round));
                                    }
                                }
                                WorkerEvent::StateOut {
                                    worker,
                                    epoch,
                                    states,
                                } => 'state_out: {
                                    let m = match pending.as_mut() {
                                        Some(ActiveOp::Migration(m)) if m.epoch == epoch => m,
                                        _ => {
                                            // A late answer on a closed epoch is
                                            // absorbed — but not dropped. An
                                            // aborted migration's victim can wake
                                            // after the rollback, process the
                                            // queued MigrateOut, and ship real
                                            // state here; the blobs have left
                                            // their owner, so they are re-homed
                                            // under the *current* (rolled-back)
                                            // view on a fresh pre-closed epoch.
                                            // A retried MigrateOut's empty
                                            // double-answer re-homes nothing.
                                            // Anything else is genuine
                                            // bookkeeping divergence, worth
                                            // shouting about.
                                            if closed_epochs.contains_key(&epoch) {
                                                injector.record(FaultEvent::StaleEpochAbsorbed {
                                                    epoch,
                                                    what: "state out",
                                                });
                                                let n_tasks = partitioner.n_tasks();
                                                let mut router = SourceRouter::from_view(
                                                    partitioner.routing_view(),
                                                );
                                                let mut by_dest: FxHashMap<
                                                    TaskId,
                                                    Vec<(Key, Bytes)>,
                                                > = FxHashMap::default();
                                                for (k, _to, blob) in states {
                                                    if blob.is_empty() {
                                                        continue;
                                                    }
                                                    let mut d = router.route(k);
                                                    if dead.contains(&d.index()) {
                                                        d = TaskId::from(next_live(
                                                            d.index(),
                                                            n_tasks,
                                                            |x| dead.contains(&x),
                                                        ));
                                                    }
                                                    by_dest.entry(d).or_default().push((k, blob));
                                                }
                                                if !by_dest.is_empty() {
                                                    next_epoch += 1;
                                                    closed_epochs.insert(next_epoch, "rehome");
                                                    for (dest, st) in by_dest {
                                                        ctl_send(
                                                            &injector,
                                                            &worker_txs[dest.index()],
                                                            dest.index(),
                                                            Message::StateInstall {
                                                                epoch: next_epoch,
                                                                states: st,
                                                            },
                                                        );
                                                    }
                                                }
                                            } else {
                                                report.protocol_errors.push(
                                                    ProtocolError::StrayStateOut {
                                                        worker: worker.index(),
                                                        epoch,
                                                        dropped_keys: states.len(),
                                                    },
                                                );
                                            }
                                            break 'state_out;
                                        }
                                    };
                                    if !m.awaiting_out.remove(&worker) {
                                        // Duplicate answer to a re-driven
                                        // MigrateOut: the first extraction
                                        // emptied the keys, so this one
                                        // carries nothing to keep.
                                        injector.record(FaultEvent::StaleEpochAbsorbed {
                                            epoch,
                                            what: "state out",
                                        });
                                        break 'state_out;
                                    }
                                    op_clock = Some(OpClock::start(current_interval));
                                    if !m.state_out_marked {
                                        m.state_out_marked = true;
                                        rec.span_phase(epoch, Phase::StateOut);
                                    }
                                    if m.plan.preplaced {
                                        // Pre-placement bills the bytes actually
                                        // extracted: the plan moves windowed
                                        // state no single interval's statistics
                                        // can size (rebalances bill their plan's
                                        // windowed-mem estimate up front).
                                        report.migrated_bytes += states
                                            .iter()
                                            .map(|(_, _, b)| b.len() as u64)
                                            .sum::<u64>();
                                    }
                                    m.collected.extend(states);
                                    if m.awaiting_out.is_empty() {
                                        // Step 5b: forward to destinations,
                                        // diverting any that died since the
                                        // plan was cut to the next live slot
                                        // (state must land where it can be
                                        // drained at shutdown).
                                        let n_tasks = partitioner.n_tasks();
                                        let mut by_dest: FxHashMap<TaskId, Vec<(Key, Bytes)>> =
                                            FxHashMap::default();
                                        for (k, to, blob) in m.collected.drain(..) {
                                            let d = if dead.contains(&to.index()) {
                                                TaskId::from(next_live(to.index(), n_tasks, |x| {
                                                    dead.contains(&x)
                                                }))
                                            } else {
                                                to
                                            };
                                            by_dest.entry(d).or_default().push((k, blob));
                                        }
                                        if by_dest.is_empty() {
                                            issue_resume(
                                                &injector,
                                                &ctl_tx,
                                                &mut resume_state,
                                                &mut rec,
                                                &open_spans,
                                                epoch,
                                                m.plan.view.clone(),
                                                current_interval,
                                            );
                                            closed_epochs.insert(epoch, "done");
                                            pending = None;
                                            op_clock = None;
                                        } else {
                                            rec.span_phase(epoch, Phase::Install);
                                            for (dest, states) in by_dest {
                                                m.awaiting_install.insert(dest);
                                                // StateInstall is never
                                                // injector-dropped (it carries
                                                // state); a failed send is
                                                // recovered by the deadline or
                                                // the dest's own death event.
                                                ctl_send(
                                                    &injector,
                                                    &worker_txs[dest.index()],
                                                    dest.index(),
                                                    Message::StateInstall {
                                                        epoch,
                                                        states: states.clone(),
                                                    },
                                                );
                                                m.sent_installs.insert(dest, states);
                                            }
                                        }
                                    }
                                }
                                WorkerEvent::InstallAck { worker, epoch } => {
                                    let resume_view = match pending.as_mut() {
                                        Some(ActiveOp::Migration(m)) if m.epoch == epoch => {
                                            if m.awaiting_install.remove(&worker) {
                                                op_clock = Some(OpClock::start(current_interval));
                                                // Step 7: resume with F′.
                                                m.awaiting_install
                                                    .is_empty()
                                                    .then(|| m.plan.view.clone())
                                            } else {
                                                // Duplicate ack of a re-driven
                                                // install (the worker dedupes
                                                // the install, then re-acks).
                                                injector.record(FaultEvent::StaleEpochAbsorbed {
                                                    epoch,
                                                    what: "install ack",
                                                });
                                                None
                                            }
                                        }
                                        Some(ActiveOp::Retire(r)) if r.epoch == epoch => {
                                            if r.awaiting_install.remove(&worker) {
                                                op_clock = Some(OpClock::start(current_interval));
                                                // Re-provision complete: resume
                                                // under the shrunk view.
                                                r.awaiting_install
                                                    .is_empty()
                                                    .then(|| r.view.clone())
                                            } else {
                                                injector.record(FaultEvent::StaleEpochAbsorbed {
                                                    epoch,
                                                    what: "install ack",
                                                });
                                                None
                                            }
                                        }
                                        _ => {
                                            // Installs are only sent by a pending
                                            // op (or fire-and-forget under a
                                            // pre-closed rollback epoch, absorbed
                                            // here) — a stray ack for an unknown
                                            // epoch is bookkeeping divergence,
                                            // not a reason to kill the pipeline.
                                            if closed_epochs.contains_key(&epoch) {
                                                injector.record(FaultEvent::StaleEpochAbsorbed {
                                                    epoch,
                                                    what: "install ack",
                                                });
                                            } else {
                                                report.protocol_errors.push(
                                                    ProtocolError::StrayInstallAck {
                                                        worker: worker.index(),
                                                        epoch,
                                                    },
                                                );
                                            }
                                            None
                                        }
                                    };
                                    if let Some(view) = resume_view {
                                        issue_resume(
                                            &injector,
                                            &ctl_tx,
                                            &mut resume_state,
                                            &mut rec,
                                            &open_spans,
                                            epoch,
                                            view,
                                            current_interval,
                                        );
                                        closed_epochs.insert(epoch, "done");
                                        pending = None;
                                        op_clock = None;
                                    }
                                }
                                WorkerEvent::Retired {
                                    worker,
                                    epoch,
                                    states,
                                    stats,
                                    processed,
                                    latency,
                                    first_interval,
                                    rx,
                                } => 'retired: {
                                    let is_ours = matches!(
                                        pending.as_ref(),
                                        Some(ActiveOp::Retire(r)) if r.epoch == epoch
                                    );
                                    if !is_ours {
                                        // A zombie victim: its scale-in was
                                        // aborted (deadline) but the Retire
                                        // marker had already landed, so the
                                        // drain completed anyway — or genuine
                                        // divergence. Either way, keep the
                                        // books: merge its totals, give the
                                        // slot's channel back, and re-home its
                                        // state under the *current* view on a
                                        // fresh, pre-closed epoch (the installs
                                        // are fire-and-forget; their acks
                                        // absorb as stale).
                                        let stale = closed_epochs.contains_key(&epoch);
                                        if stale {
                                            injector.record(FaultEvent::StaleEpochAbsorbed {
                                                epoch,
                                                what: "retired",
                                            });
                                        } else {
                                            report.protocol_errors.push(
                                                ProtocolError::StrayRetired {
                                                    worker: worker.index(),
                                                    epoch,
                                                },
                                            );
                                        }
                                        report.per_worker_processed[worker.index()] += processed;
                                        report.processed += processed;
                                        report.latency_us.merge(&latency);
                                        merge_first(
                                            &mut report.first_tuple_interval[worker.index()],
                                            first_interval,
                                        );
                                        ledger.on_residue(worker, &stats);
                                        worker_rxs[worker.index()] = Some(rx);
                                        if retiring == Some(worker) {
                                            retiring = None;
                                        }
                                        if stale && worker.index() == active - 1 {
                                            ws.set_active(Instant::now(), active - 1 - dead.len());
                                            active -= 1;
                                        }
                                        if stale {
                                            let n_tasks = partitioner.n_tasks();
                                            let mut router =
                                                SourceRouter::from_view(partitioner.routing_view());
                                            let mut by_dest: FxHashMap<TaskId, Vec<(Key, Bytes)>> =
                                                FxHashMap::default();
                                            for (k, blob) in states {
                                                if blob.is_empty() {
                                                    continue;
                                                }
                                                let mut d = router.route(k);
                                                if dead.contains(&d.index()) {
                                                    d = TaskId::from(next_live(
                                                        d.index(),
                                                        n_tasks,
                                                        |x| dead.contains(&x),
                                                    ));
                                                }
                                                by_dest.entry(d).or_default().push((k, blob));
                                            }
                                            if !by_dest.is_empty() {
                                                next_epoch += 1;
                                                closed_epochs.insert(next_epoch, "rehome");
                                                for (dest, st) in by_dest {
                                                    ctl_send(
                                                        &injector,
                                                        &worker_txs[dest.index()],
                                                        dest.index(),
                                                        Message::StateInstall {
                                                            epoch: next_epoch,
                                                            states: st,
                                                        },
                                                    );
                                                }
                                            }
                                        }
                                        break 'retired;
                                    }
                                    // lint: allow(panic, reason = "is_ours above
                                    // matched pending as Some(Retire) with this
                                    // epoch, and nothing between takes it")
                                    let Some(ActiveOp::Retire(mut r)) = pending.take() else {
                                        unreachable!("checked above");
                                    };
                                    debug_assert_eq!(r.victim, worker);
                                    op_clock = Some(OpClock::start(current_interval));
                                    // The victim's drained state is in hand —
                                    // the scale-in's state-out phase.
                                    rec.span_phase(epoch, Phase::StateOut);
                                    report.per_worker_processed[worker.index()] += processed;
                                    report.processed += processed;
                                    report.latency_us.merge(&latency);
                                    merge_first(
                                        &mut report.first_tuple_interval[worker.index()],
                                        first_interval,
                                    );
                                    // Fold the victim's unreported residue into
                                    // the oldest open round (issued while the
                                    // victim was alive, so its slot exists) —
                                    // dropping it would read as a load dip and
                                    // re-trigger the scale-in policy.
                                    ledger.on_residue(worker, &stats);
                                    // The slot's channel stays connected (our
                                    // sender clones live on), so a later
                                    // scale-out can respawn here and no message
                                    // can ever be silently dropped.
                                    worker_rxs[worker.index()] = Some(rx);
                                    retiring = None;
                                    ws.set_active(Instant::now(), active - 1 - dead.len());
                                    active -= 1;
                                    debug_assert_eq!(worker.index(), active);
                                    // Re-home the drained state under the op's
                                    // captured view — the placement every later
                                    // op's delta is computed against — diverting
                                    // destinations that died since the view was
                                    // cut.
                                    let n_tasks = partitioner.n_tasks();
                                    let mut router = SourceRouter::from_view(r.view.clone());
                                    let mut by_dest: FxHashMap<TaskId, Vec<(Key, Bytes)>> =
                                        FxHashMap::default();
                                    for (k, blob) in states {
                                        if blob.is_empty() {
                                            continue;
                                        }
                                        let mut d = router.route(k);
                                        if dead.contains(&d.index()) {
                                            d = TaskId::from(next_live(d.index(), n_tasks, |x| {
                                                dead.contains(&x)
                                            }));
                                        }
                                        by_dest.entry(d).or_default().push((k, blob));
                                    }
                                    if by_dest.is_empty() {
                                        issue_resume(
                                            &injector,
                                            &ctl_tx,
                                            &mut resume_state,
                                            &mut rec,
                                            &open_spans,
                                            epoch,
                                            r.view.clone(),
                                            current_interval,
                                        );
                                        closed_epochs.insert(epoch, "done");
                                        op_clock = None;
                                    } else {
                                        rec.span_phase(epoch, Phase::Install);
                                        for (dest, st) in by_dest {
                                            debug_assert!(dest.index() < active);
                                            r.awaiting_install.insert(dest);
                                            ctl_send(
                                                &injector,
                                                &worker_txs[dest.index()],
                                                dest.index(),
                                                Message::StateInstall {
                                                    epoch,
                                                    states: st.clone(),
                                                },
                                            );
                                            r.sent_installs.insert(dest, st);
                                        }
                                        pending = Some(ActiveOp::Retire(r));
                                    }
                                }
                                WorkerEvent::Killed {
                                    worker,
                                    lost: worker_lost,
                                    stats,
                                    processed,
                                    latency,
                                    first_interval,
                                    rx,
                                } => {
                                    let w = worker.index();
                                    injector.record(FaultEvent::WorkerDead { worker: w });
                                    // Keep the books: what the worker *did*
                                    // process counts; what it held is lost and
                                    // accounted per key.
                                    report.per_worker_processed[w] += processed;
                                    report.processed += processed;
                                    report.latency_us.merge(&latency);
                                    merge_first(
                                        &mut report.first_tuple_interval[w],
                                        first_interval,
                                    );
                                    ledger.on_residue(worker, &stats);
                                    for closed in ledger.on_worker_dead(worker) {
                                        closed_rounds.push(closed);
                                    }
                                    let mut n_lost = 0u64;
                                    for (k, n) in worker_lost {
                                        n_lost += n;
                                        *lost.entry(k).or_insert(0) += n;
                                    }
                                    injector.add_lost(n_lost);
                                    injector.record(FaultEvent::StateLost { worker: w });
                                    dead.insert(w);
                                    ws.set_active(Instant::now(), active - dead.len());
                                    // Pin the dead slot's keys onto survivors
                                    // (via each key's hash home, cycled past
                                    // dead slots) and tell the source; its ack
                                    // returns when the re-route is live, at
                                    // which point the channel backlog is
                                    // drained and accounted (DeadDestAck).
                                    let moves =
                                        partitioner.reroute_dead(worker, &|x| dead.contains(&x));
                                    injector.record(FaultEvent::Rerouted {
                                        from_worker: w,
                                        moved_keys: moves.len(),
                                    });
                                    send_src(
                                        &injector,
                                        &ctl_tx,
                                        None,
                                        SourceCtl::DeadDest {
                                            dest: worker,
                                            moves,
                                        },
                                    );
                                    dead_pending.insert(w, rx);
                                    // Untangle the in-flight op from the
                                    // corpse: a pending phase waiting on the
                                    // dead worker must not wait for the
                                    // deadline to notice.
                                    let mut resolve_retire: Option<(u64, RoutingView)> = None;
                                    let mut forward_now = false;
                                    match pending.as_mut() {
                                        Some(ActiveOp::Migration(m)) => {
                                            if m.awaiting_out.remove(&worker)
                                                && m.awaiting_out.is_empty()
                                            {
                                                // Remaining extractions are all
                                                // in; forward below (outside
                                                // this borrow).
                                                forward_now = true;
                                            }
                                            if m.awaiting_install.remove(&worker)
                                                && m.awaiting_install.is_empty()
                                            {
                                                let epoch = m.epoch;
                                                let view = m.plan.view.clone();
                                                issue_resume(
                                                    &injector,
                                                    &ctl_tx,
                                                    &mut resume_state,
                                                    &mut rec,
                                                    &open_spans,
                                                    epoch,
                                                    view,
                                                    current_interval,
                                                );
                                                closed_epochs.insert(epoch, "done");
                                                pending = None;
                                                op_clock = None;
                                            }
                                        }
                                        Some(ActiveOp::Retire(r)) if r.victim == worker => {
                                            // The victim died mid-retire: its
                                            // state died with it (accounted
                                            // above); resume under the shrunk
                                            // view and close the op.
                                            resolve_retire = Some((r.epoch, r.view.clone()));
                                        }
                                        Some(ActiveOp::Retire(r)) => {
                                            // A re-home install dest died; the
                                            // blob in its channel is counted
                                            // by the DeadDestAck drain.
                                            let was_awaited = r.awaiting_install.remove(&worker);
                                            if was_awaited && r.awaiting_install.is_empty() {
                                                resolve_retire = Some((r.epoch, r.view.clone()));
                                            }
                                        }
                                        _ => {}
                                    }
                                    if forward_now {
                                        // Re-enter the forwarding step exactly
                                        // as a final StateOut would have.
                                        if let Some(ActiveOp::Migration(m)) = pending.as_mut() {
                                            let n_tasks = partitioner.n_tasks();
                                            let epoch = m.epoch;
                                            let mut by_dest: FxHashMap<TaskId, Vec<(Key, Bytes)>> =
                                                FxHashMap::default();
                                            for (k, to, blob) in m.collected.drain(..) {
                                                let d = if dead.contains(&to.index()) {
                                                    TaskId::from(next_live(
                                                        to.index(),
                                                        n_tasks,
                                                        |x| dead.contains(&x),
                                                    ))
                                                } else {
                                                    to
                                                };
                                                by_dest.entry(d).or_default().push((k, blob));
                                            }
                                            if by_dest.is_empty() {
                                                issue_resume(
                                                    &injector,
                                                    &ctl_tx,
                                                    &mut resume_state,
                                                    &mut rec,
                                                    &open_spans,
                                                    epoch,
                                                    m.plan.view.clone(),
                                                    current_interval,
                                                );
                                                closed_epochs.insert(epoch, "done");
                                                pending = None;
                                                op_clock = None;
                                            } else {
                                                rec.span_phase(epoch, Phase::Install);
                                                for (dest, st) in by_dest {
                                                    m.awaiting_install.insert(dest);
                                                    ctl_send(
                                                        &injector,
                                                        &worker_txs[dest.index()],
                                                        dest.index(),
                                                        Message::StateInstall {
                                                            epoch,
                                                            states: st.clone(),
                                                        },
                                                    );
                                                    m.sent_installs.insert(dest, st);
                                                }
                                            }
                                        }
                                    }
                                    if let Some((epoch, view)) = resolve_retire {
                                        issue_resume(
                                            &injector,
                                            &ctl_tx,
                                            &mut resume_state,
                                            &mut rec,
                                            &open_spans,
                                            epoch,
                                            view,
                                            current_interval,
                                        );
                                        closed_epochs.insert(epoch, "done");
                                        if retiring == Some(worker) {
                                            retiring = None;
                                        }
                                        pending = None;
                                        op_clock = None;
                                    }
                                    // A death during the drain means one
                                    // Shutdown marker will never be answered.
                                    if draining {
                                        drain_target = drain_target.saturating_sub(1);
                                        if drained >= drain_target {
                                            break 'ctl;
                                        }
                                    }
                                }
                                WorkerEvent::Drained {
                                    worker,
                                    final_states,
                                    processed,
                                    latency,
                                    first_interval,
                                } => {
                                    report.per_worker_processed[worker.index()] += processed;
                                    report.processed += processed;
                                    report.latency_us.merge(&latency);
                                    merge_first(
                                        &mut report.first_tuple_interval[worker.index()],
                                        first_interval,
                                    );
                                    report.final_states.extend(final_states);
                                    drained += 1;
                                    if draining && drained >= drain_target {
                                        break 'ctl;
                                    }
                                }
                            }
                        }
                    }
                }

                // ---- bottom half: runs every wake-up, timeouts included ----

                // Keep dead channels drained while the source may still
                // be routing at them (its DeadDest is in flight): a
                // bounded channel left full would backpressure the source
                // against a corpse and stall the data plane. Everything
                // drained is accounted as lost, exactly as the final
                // DeadDestAck drain does.
                for (&w, rx) in &dead_pending {
                    let sop = scratch_op.get_or_insert_with(|| op_factory(TaskId::from(w)));
                    let n = drain_dead_channel(rx, sop.as_mut(), &mut lost);
                    injector.add_lost(n);
                }

                // Stats rounds whose reporters went silent close by
                // deadline, so a wedged worker cannot hold decisions — or
                // shutdown, which waits on open rounds — hostage.
                for (interval, round, missing) in ledger.expire_rounds(
                    current_interval,
                    config.round_deadline_intervals,
                    config.round_deadline,
                ) {
                    injector.record(FaultEvent::RoundTimedOut { interval, missing });
                    closed_rounds.push((interval, round));
                }

                // Decide every round closed this tick — whether a full
                // report set, a dead-worker strike, or deadline expiry
                // closed it, the same code decides.
                for (interval, round) in std::mem::take(&mut closed_rounds) {
                    // Telemetry snapshot: exactly what the elasticity
                    // policy and partitioner are about to see.
                    rec.snapshot(
                        interval,
                        round.loads.clone(),
                        round.queues.clone(),
                        round.mean_latency_us,
                        round.p99_latency_us,
                    );
                    let merged = round.merged;
                    let loads = round.loads;
                    // Elasticity decision. The observation's parallelism
                    // is the *planned* one — `partitioner.n_tasks()`,
                    // which every decision mutates immediately — not the
                    // physical worker count, which lags while retires
                    // drain; deciding on the stale physical count would
                    // re-trigger on parallelism the policy already gave
                    // up. Scale-ins may queue (victims walk down from the
                    // planned tail, ops execute in order); a scale-out is
                    // skipped while any scale-in is still
                    // re-provisioning, since the spawn slot must be the
                    // contiguous physical tail.
                    let planned = partitioner.n_tasks();
                    let scale_in_flight = pending.as_ref().is_some_and(ActiveOp::is_scale_in)
                        || queue.iter().any(PlannedOp::is_scale_in);
                    let obs = IntervalObservation {
                        interval,
                        n_tasks: planned,
                        loads: &loads,
                        queue_depths: &round.queues,
                        mean_latency_us: round.mean_latency_us,
                        p99_latency_us: round.p99_latency_us,
                        n_dead: dead.len(),
                    };
                    match policy.decide(&obs) {
                        ScaleDecision::ScaleOut if !dead.is_empty() => {
                            // Re-provision the lowest dead slot rather
                            // than widening: the capacity the policy
                            // wants back is the capacity the death took.
                            // Routing is untouched (the revived slot
                            // starts key-less; the next rebalance loads
                            // it) — only the source's divert set shrinks,
                            // once it swaps in the fresh channel that
                            // `ReviveDest` carries.
                            // lint: allow(panic, reason = "guarded by
                            // !dead.is_empty() on the arm")
                            let slot = *dead.iter().min().expect("dead non-empty");
                            let (tx, rx) = bounded(config.channel_capacity);
                            worker_txs[slot] = tx.clone();
                            spawner.spawn(
                                s,
                                slot,
                                rx,
                                op_factory(TaskId::from(slot)),
                                interval + 1,
                            );
                            send_src(
                                &injector,
                                &ctl_tx,
                                None,
                                SourceCtl::ReviveDest {
                                    dest: TaskId::from(slot),
                                    tx,
                                },
                            );
                            dead.remove(&slot);
                            ws.set_active(Instant::now(), active - dead.len());
                            injector.record(FaultEvent::SlotRevived { worker: slot });
                        }
                        ScaleDecision::ScaleOut if !scale_in_flight && active < max_workers => 'scale_out: {
                            debug_assert_eq!(planned, active);
                            let Some(rx) = worker_rxs[active].take() else {
                                // The slot's receiver was never
                                // returned (a prior retire
                                // mismatch): record it and keep
                                // running at the current width
                                // rather than tearing down the
                                // topology.
                                report.protocol_errors.push(ProtocolError::ScaleOutAborted {
                                    to: active + 1,
                                    slot: active,
                                });
                                break 'scale_out;
                            };
                            ws.set_active(Instant::now(), active + 1 - dead.len());
                            let live: Vec<Key> = merged.iter().map(|(k, _)| k).collect();
                            spawner.spawn(
                                s,
                                active,
                                rx,
                                op_factory(TaskId::from(active)),
                                interval + 1,
                            );
                            // Pre-placement (default): plan
                            // the migration at provision
                            // time — the new slot's keys
                            // move in through the same
                            // quiesce → install → resume
                            // machinery as a rebalance, so
                            // it takes load this interval.
                            // The seed shape pins churn
                            // instead and the slot idles
                            // until the next rebalance.
                            let (new, moves) = if config.preplace {
                                partitioner.scale_out_plan(&live)
                            } else {
                                (partitioner.scale_out(&live), Vec::new())
                            };
                            debug_assert_eq!(new.index(), active);
                            report.scale_events.push(ScaleEvent {
                                interval,
                                from: active,
                                to: active + 1,
                            });
                            active += 1;
                            if moves.is_empty() {
                                // Nothing to pre-place (seed
                                // shape, or a key-oblivious
                                // strategy whose new worker
                                // takes traffic without any
                                // state): publish the grown
                                // view directly.
                                send_src(
                                    &injector,
                                    &ctl_tx,
                                    None,
                                    SourceCtl::UpdateView {
                                        view: partitioner.routing_view(),
                                    },
                                );
                            } else {
                                report.migrated_keys += moves.len() as u64;
                                let mut by_source: FxHashMap<TaskId, Vec<(Key, TaskId)>> =
                                    FxHashMap::default();
                                let mut affected = Vec::with_capacity(moves.len());
                                for (k, holder) in moves {
                                    affected.push(k);
                                    by_source.entry(holder).or_default().push((k, new));
                                }
                                queue.push_back(PlannedOp::Migrate(PlannedMigration {
                                    by_source,
                                    affected,
                                    view: partitioner.routing_view(),
                                    preplaced: true,
                                    label: OpLabel::ScaleOut,
                                }));
                            }
                        }
                        ScaleDecision::ScaleIn if !dead.is_empty() => {
                            // Degraded: retiring a live worker while a
                            // dead slot's keys are already packed onto
                            // survivors would shed real capacity on top
                            // of the loss. Hold, and let the ledger say
                            // why the policy's wish was refused.
                            injector.record(FaultEvent::ScaleHeld { interval });
                        }
                        ScaleDecision::ScaleIn if planned > 1 => {
                            // Shrink the routing function now
                            // (later decisions and rebalances
                            // build on it); the physical
                            // retirement queues behind any
                            // in-flight op.
                            let victim = TaskId::from(planned - 1);
                            let live: Vec<Key> = merged.iter().map(|(k, _)| k).collect();
                            partitioner.scale_in(victim, &live);
                            report.scale_events.push(ScaleEvent {
                                interval,
                                from: planned,
                                to: planned - 1,
                            });
                            queue.push_back(PlannedOp::ScaleIn {
                                victim,
                                view: partitioner.routing_view(),
                            });
                        }
                        _ => {}
                    }
                    // Hot-key split decision: same cadence as elasticity,
                    // executed through the same serialized protocol queue.
                    // The observation's per-key costs are the merged round
                    // totals — a split key's entry already sums its
                    // replicas' partial loads, which is the signal the
                    // unsplit watermark needs.
                    if let Some(sp) = split_policy.as_mut() {
                        let key_loads: Vec<(u64, u64)> =
                            merged.iter().map(|(k, st)| (k.raw(), st.cost)).collect();
                        let mut split_keys: Vec<u64> =
                            partitioner.splits().iter().map(|(k, _)| k.raw()).collect();
                        split_keys.sort_unstable();
                        let sobs = SplitObservation {
                            interval,
                            n_tasks: planned,
                            key_loads: &key_loads,
                            split_keys: &split_keys,
                        };
                        match sp.decide(&sobs) {
                            SplitDecision::Split { key, replicas }
                                if planned >= 2 && replicas >= 2 && !split_keys.contains(&key) =>
                            {
                                // Replica slots: the key's current route
                                // stays primary (unsplit consolidates back
                                // onto it with no table change); the rest
                                // are the least-loaded live tasks. Dead
                                // slots sort last — routing to them would
                                // only bounce off the source's divert.
                                let k = Key(key);
                                let primary = partitioner.route(k);
                                let task_loads: Vec<u64> = (0..planned)
                                    .map(|i| {
                                        if dead.contains(&i) {
                                            u64::MAX
                                        } else {
                                            loads.get(i).copied().unwrap_or(0)
                                        }
                                    })
                                    .collect();
                                let slots: Vec<TaskId> =
                                    choose_replicas(primary.index(), &task_loads, replicas)
                                        .into_iter()
                                        .map(TaskId::from)
                                        .collect();
                                if slots.len() >= 2 && partitioner.split_key(k, &slots) {
                                    report.split_events.push(SplitEvent {
                                        interval,
                                        key,
                                        from: 1,
                                        to: slots.len(),
                                    });
                                    // A split moves no state: the op is a
                                    // degenerate migration whose pause
                                    // window makes the view swap atomic
                                    // (PauseAck with nothing awaited
                                    // resumes immediately under the split
                                    // view).
                                    queue.push_back(PlannedOp::Migrate(PlannedMigration {
                                        by_source: FxHashMap::default(),
                                        affected: vec![k],
                                        view: partitioner.routing_view(),
                                        preplaced: false,
                                        label: OpLabel::Split,
                                    }));
                                }
                            }
                            SplitDecision::Unsplit { key } => {
                                let k = Key(key);
                                // `unsplit_key` consolidates the routing
                                // onto the primary and returns the replica
                                // set; the physical consolidation is a
                                // real migration moving each live
                                // non-primary replica's partial state into
                                // the primary (whose `install` merges
                                // additively).
                                if let Some(replica_set) = partitioner.unsplit_key(k) {
                                    let primary = replica_set[0];
                                    let mut by_source: FxHashMap<TaskId, Vec<(Key, TaskId)>> =
                                        FxHashMap::default();
                                    for &r in replica_set.iter().skip(1) {
                                        if r != primary && !dead.contains(&r.index()) {
                                            by_source.insert(r, vec![(k, primary)]);
                                        }
                                    }
                                    report.split_events.push(SplitEvent {
                                        interval,
                                        key,
                                        from: replica_set.len(),
                                        to: 1,
                                    });
                                    // Billed like a pre-placement: the
                                    // moved bytes are whatever partials
                                    // the replicas actually hold, which
                                    // no single interval's stats can
                                    // size.
                                    queue.push_back(PlannedOp::Migrate(PlannedMigration {
                                        by_source,
                                        affected: vec![k],
                                        view: partitioner.routing_view(),
                                        preplaced: true,
                                        label: OpLabel::Unsplit,
                                    }));
                                }
                            }
                            _ => {}
                        }
                    }
                    if let Some(out) = partitioner.end_interval(merged) {
                        if !out.plan.is_empty() {
                            report.rebalances += 1;
                            report.migrated_keys += out.plan.keys_moved() as u64;
                            report.migrated_bytes += out.plan.cost_bytes();
                            let n_tasks = partitioner.n_tasks();
                            let mut dead_involved = false;
                            let mut fixups: Vec<(Key, TaskId)> = Vec::new();
                            let mut by_source: FxHashMap<TaskId, Vec<(Key, TaskId)>> =
                                FxHashMap::default();
                            let mut affected = Vec::with_capacity(out.plan.keys_moved());
                            for mv in out.plan.moves() {
                                affected.push(mv.key);
                                let to = if dead.contains(&mv.to.index()) {
                                    // The planner aimed a key at a corpse
                                    // (its stats predate the death):
                                    // divert it to the slot its traffic
                                    // already lands on.
                                    dead_involved = true;
                                    let d = TaskId::from(next_live(mv.to.index(), n_tasks, |x| {
                                        dead.contains(&x)
                                    }));
                                    fixups.push((mv.key, d));
                                    d
                                } else {
                                    mv.to
                                };
                                if dead.contains(&mv.from.index()) {
                                    // The holder died: its state is gone
                                    // and already accounted, so this is a
                                    // routing-only move.
                                    dead_involved = true;
                                    continue;
                                }
                                by_source.entry(mv.from).or_default().push((mv.key, to));
                            }
                            if !fixups.is_empty() {
                                partitioner.apply_moves(&fixups);
                            }
                            // When the partitioner applied
                            // the rebalance as a delta, ship
                            // the source the same delta —
                            // O(churn), and the source's
                            // table stays in lockstep because
                            // both sides mutate equal tables
                            // identically. Swaps (and every
                            // scale op above) keep shipping
                            // full views: those are the
                            // resync points. Dead involvement
                            // also forces a full view — the
                            // fixups above made the
                            // controller's table diverge from
                            // the plan's moves, so the raw
                            // delta would desync the source.
                            let view = if dead_involved {
                                partitioner.routing_view()
                            } else if partitioner.last_install_was_delta() {
                                RoutingView::TableDelta {
                                    n_tasks: partitioner.n_tasks(),
                                    moves: out.plan.moves().iter().map(|m| (m.key, m.to)).collect(),
                                }
                            } else {
                                partitioner.routing_view()
                            };
                            queue.push_back(PlannedOp::Migrate(PlannedMigration {
                                by_source,
                                affected,
                                view,
                                preplaced: false,
                                label: OpLabel::Rebalance,
                            }));
                        }
                    }
                }

                // In-flight-op deadline. Intervals are the deterministic
                // clock; the wall bound keeps healthy-but-slow runs from
                // spurious expiry, and rules alone once the source has
                // finished and intervals stop. First expiry re-drives
                // the stuck phase (markers are idempotent: workers and
                // source absorb duplicates by epoch); the second aborts
                // with rollback.
                let mut abort_op = false;
                if let (Some(op), Some(clock)) = (pending.as_mut(), op_clock.as_mut()) {
                    let wall_ok = clock.started.elapsed() < config.op_deadline;
                    let iv_ok =
                        current_interval < clock.started_interval + config.op_deadline_intervals;
                    if !wall_ok && (!iv_ok || source_finished) {
                        if clock.retried {
                            abort_op = true;
                        } else {
                            clock.retried = true;
                            clock.started = Instant::now();
                            clock.started_interval = current_interval;
                            match op {
                                ActiveOp::Migration(m) => {
                                    injector.record(FaultEvent::OpRetried {
                                        op: OpKind::Migrate,
                                        epoch: m.epoch,
                                    });
                                    if !m.pause_acked {
                                        send_src(
                                            &injector,
                                            &ctl_tx,
                                            Some(CtlKind::Pause),
                                            SourceCtl::Pause {
                                                epoch: m.epoch,
                                                affected: m.plan.affected.clone(),
                                            },
                                        );
                                    } else if !m.awaiting_out.is_empty() {
                                        let stuck: Vec<TaskId> =
                                            m.awaiting_out.iter().copied().collect();
                                        for w in stuck {
                                            if dead.contains(&w.index()) {
                                                continue;
                                            }
                                            let moves = m
                                                .plan
                                                .by_source
                                                .get(&w)
                                                .cloned()
                                                .unwrap_or_default();
                                            send_ctl_marker(
                                                &injector,
                                                &worker_txs,
                                                w.index(),
                                                CtlKind::MigrateOut,
                                                Message::MigrateOut {
                                                    epoch: m.epoch,
                                                    moves,
                                                },
                                            );
                                        }
                                    } else {
                                        for (&dst, states) in &m.sent_installs {
                                            if !m.awaiting_install.contains(&dst)
                                                || dead.contains(&dst.index())
                                            {
                                                continue;
                                            }
                                            ctl_send(
                                                &injector,
                                                &worker_txs[dst.index()],
                                                dst.index(),
                                                Message::StateInstall {
                                                    epoch: m.epoch,
                                                    states: states.clone(),
                                                },
                                            );
                                        }
                                    }
                                }
                                ActiveOp::Retire(r) => {
                                    injector.record(FaultEvent::OpRetried {
                                        op: OpKind::Retire,
                                        epoch: r.epoch,
                                    });
                                    if !r.pause_acked {
                                        send_src(
                                            &injector,
                                            &ctl_tx,
                                            Some(CtlKind::Pause),
                                            SourceCtl::PauseDest {
                                                epoch: r.epoch,
                                                dest: r.victim,
                                            },
                                        );
                                    } else if retiring == Some(r.victim) {
                                        send_ctl_marker(
                                            &injector,
                                            &worker_txs,
                                            r.victim.index(),
                                            CtlKind::Retire,
                                            Message::Retire { epoch: r.epoch },
                                        );
                                    } else {
                                        for (&dst, states) in &r.sent_installs {
                                            if !r.awaiting_install.contains(&dst)
                                                || dead.contains(&dst.index())
                                            {
                                                continue;
                                            }
                                            ctl_send(
                                                &injector,
                                                &worker_txs[dst.index()],
                                                dst.index(),
                                                Message::StateInstall {
                                                    epoch: r.epoch,
                                                    states: states.clone(),
                                                },
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                if abort_op {
                    if let Some(op) = pending.take() {
                        op_clock = None;
                        match op {
                            ActiveOp::Migration(m) => {
                                injector.record(FaultEvent::OpAborted {
                                    op: OpKind::Migrate,
                                    epoch: m.epoch,
                                });
                                closed_epochs.insert(m.epoch, "aborted");
                                // Close the span Aborted *before* the
                                // rollback resume goes out, so the resume
                                // phase (and its ack) cannot land on a
                                // closed span.
                                if open_spans.remove(&m.epoch) {
                                    rec.span_close(m.epoch, Outcome::Aborted);
                                }
                                // Roll the routing back: every affected
                                // key returns to its origin (diverted
                                // past corpses). State still in hand
                                // (`collected`) is re-installed under a
                                // fresh pre-closed epoch; state already
                                // delivered stays where it landed —
                                // re-sending it could double-count, and
                                // per-key counts merge at shutdown
                                // regardless of which slot holds them.
                                let n_tasks = partitioner.n_tasks();
                                let mut origin_of: FxHashMap<Key, TaskId> = FxHashMap::default();
                                let mut reverse: Vec<(Key, TaskId)> = Vec::new();
                                for (&src, moves) in &m.plan.by_source {
                                    let home = if dead.contains(&src.index()) {
                                        TaskId::from(next_live(src.index(), n_tasks, |x| {
                                            dead.contains(&x)
                                        }))
                                    } else {
                                        src
                                    };
                                    for &(k, _) in moves {
                                        reverse.push((k, home));
                                        origin_of.insert(k, home);
                                    }
                                }
                                partitioner.apply_moves(&reverse);
                                next_epoch += 1;
                                closed_epochs.insert(next_epoch, "rollback");
                                let mut by_origin: FxHashMap<TaskId, Vec<(Key, Bytes)>> =
                                    FxHashMap::default();
                                for (k, _to, blob) in m.collected {
                                    let Some(&home) = origin_of.get(&k) else {
                                        continue;
                                    };
                                    by_origin.entry(home).or_default().push((k, blob));
                                }
                                // The rollback is its own span on the fresh
                                // pre-closed epoch: its installs and the
                                // resume happen synchronously right here,
                                // so it opens and closes in one breath.
                                rec.span_open(next_epoch, OpLabel::Rollback);
                                if !by_origin.is_empty() {
                                    rec.span_phase(next_epoch, Phase::Install);
                                }
                                for (dst, states) in by_origin {
                                    ctl_send(
                                        &injector,
                                        &worker_txs[dst.index()],
                                        dst.index(),
                                        Message::StateInstall {
                                            epoch: next_epoch,
                                            states,
                                        },
                                    );
                                }
                                rec.span_phase(next_epoch, Phase::Resume);
                                issue_resume(
                                    &injector,
                                    &ctl_tx,
                                    &mut resume_state,
                                    &mut rec,
                                    &open_spans,
                                    m.epoch,
                                    partitioner.routing_view(),
                                    current_interval,
                                );
                                rec.span_close(next_epoch, Outcome::Completed);
                            }
                            ActiveOp::Retire(r) => {
                                injector.record(FaultEvent::OpAborted {
                                    op: OpKind::Retire,
                                    epoch: r.epoch,
                                });
                                closed_epochs.insert(r.epoch, "aborted");
                                if open_spans.remove(&r.epoch) {
                                    rec.span_close(r.epoch, Outcome::Aborted);
                                }
                                // The routing already shrank at decision
                                // time, so resume under the retire's view:
                                // a still-live victim becomes a routed-
                                // around zombie that drains at shutdown
                                // with its state intact; a late `Retired`
                                // is absorbed by the closed epoch.
                                if retiring == Some(r.victim) {
                                    retiring = None;
                                }
                                issue_resume(
                                    &injector,
                                    &ctl_tx,
                                    &mut resume_state,
                                    &mut rec,
                                    &open_spans,
                                    r.epoch,
                                    r.view,
                                    current_interval,
                                );
                            }
                        }
                    }
                }

                // Resume deadline: re-drive, forever — an abandoned
                // resume would strand pause-buffered tuples at the
                // source (unaccounted loss) and hang shutdown. Only the
                // first re-drive is ledgered; the source absorbs
                // duplicates by epoch.
                let mut redrive: Vec<(u64, RoutingView)> = Vec::new();
                for (&epoch, rc) in resume_state.iter_mut() {
                    let wall_ok = rc.started.elapsed() < config.op_deadline;
                    let iv_ok =
                        current_interval < rc.started_interval + config.op_deadline_intervals;
                    if wall_ok || (iv_ok && !source_finished) {
                        continue;
                    }
                    if !rc.retried {
                        rc.retried = true;
                        injector.record(FaultEvent::OpRetried {
                            op: OpKind::Resume,
                            epoch,
                        });
                    }
                    rc.started = Instant::now();
                    rc.started_interval = current_interval;
                    redrive.push((epoch, rc.view.clone()));
                }
                for (epoch, view) in redrive {
                    send_src(
                        &injector,
                        &ctl_tx,
                        Some(CtlKind::Resume),
                        SourceCtl::Resume { epoch, view },
                    );
                }

                // Start the next queued control-plane op when idle.
                if pending.is_none() {
                    if let Some(op) = queue.pop_front() {
                        match op {
                            PlannedOp::Migrate(mut plan) => {
                                // Movers that died since planning hold no
                                // state (lost and accounted at death);
                                // their keys still move in the view.
                                plan.by_source.retain(|src, _| !dead.contains(&src.index()));
                                next_epoch += 1;
                                // The span id is the op epoch: Plan marks
                                // the pop, Pause marks the quiesce request
                                // going out.
                                rec.span_open(next_epoch, plan.label);
                                rec.span_phase(next_epoch, Phase::Plan);
                                rec.span_phase(next_epoch, Phase::Pause);
                                open_spans.insert(next_epoch);
                                send_src(
                                    &injector,
                                    &ctl_tx,
                                    Some(CtlKind::Pause),
                                    SourceCtl::Pause {
                                        epoch: next_epoch,
                                        affected: plan.affected.clone(),
                                    },
                                );
                                op_clock = Some(OpClock::start(current_interval));
                                pending = Some(ActiveOp::Migration(ActiveMigration {
                                    epoch: next_epoch,
                                    plan,
                                    pause_acked: false,
                                    awaiting_out: FxHashSet::default(),
                                    collected: Vec::new(),
                                    awaiting_install: FxHashSet::default(),
                                    sent_installs: FxHashMap::default(),
                                    state_out_marked: false,
                                }));
                            }
                            PlannedOp::ScaleIn { victim, view }
                                if dead.contains(&victim.index()) =>
                            {
                                // The victim died before its retirement
                                // started: state accounted, keys already
                                // re-routed. Finalize the width
                                // bookkeeping and publish the shrunk
                                // view; no pause is needed because the
                                // source diverts the slot anyway.
                                dead.remove(&victim.index());
                                active -= 1;
                                debug_assert_eq!(victim.index(), active);
                                ws.set_active(Instant::now(), active - dead.len());
                                send_src(&injector, &ctl_tx, None, SourceCtl::UpdateView { view });
                            }
                            PlannedOp::ScaleIn { victim, view } => {
                                next_epoch += 1;
                                rec.span_open(next_epoch, OpLabel::ScaleIn);
                                rec.span_phase(next_epoch, Phase::Plan);
                                rec.span_phase(next_epoch, Phase::Pause);
                                open_spans.insert(next_epoch);
                                send_src(
                                    &injector,
                                    &ctl_tx,
                                    Some(CtlKind::Pause),
                                    SourceCtl::PauseDest {
                                        epoch: next_epoch,
                                        dest: victim,
                                    },
                                );
                                op_clock = Some(OpClock::start(current_interval));
                                pending = Some(ActiveOp::Retire(ActiveRetire {
                                    epoch: next_epoch,
                                    victim,
                                    view,
                                    pause_acked: false,
                                    retire_sent: false,
                                    awaiting_install: FxHashSet::default(),
                                    sent_installs: FxHashMap::default(),
                                }));
                            }
                        }
                    }
                }

                // Shutdown when fully quiesced. `resume_state` guards
                // the flush race: the source must confirm it has
                // re-enqueued all pause-buffered tuples before Shutdown
                // markers enter the worker channels behind them.
                // `dead_pending` guards loss accounting: a dead slot's
                // channel backlog must be counted before teardown.
                if source_finished
                    && !draining
                    && pending.is_none()
                    && queue.is_empty()
                    && ledger.outstanding() == 0
                    && resume_state.is_empty()
                    && dead_pending.is_empty()
                {
                    draining = true;
                    drain_target = 0;
                    for (i, tx) in worker_txs.iter().enumerate().take(active) {
                        if dead.contains(&i) {
                            continue;
                        }
                        // A slot whose Shutdown did not land (timeout or
                        // disconnect) is left out of the drain target;
                        // its thread still exits when the channel
                        // disconnects at teardown.
                        if ctl_send(&injector, tx, i, Message::Shutdown) {
                            drain_target += 1;
                        }
                    }
                    if drained >= drain_target {
                        break 'ctl;
                    }
                }
            }

            // All workers drained. Close the worker-seconds integral and
            // tear down the auxiliaries. The spawner holds a
            // collector-sender clone; it must drop before the collector
            // join, or the collector never observes closure.
            report.worker_seconds = ws.finish(Instant::now());
            // Disconnect here means the source already exited (it only
            // does so on Shutdown or panic; a panic is surfaced by the
            // join below) — nothing to tell it.
            let _ = ctl_tx.send(SourceCtl::Shutdown);
            stop.store(true, Ordering::Relaxed);
            drop(spawner);
            drop(col_tx);
            // Join the source before taking the ledger: it records
            // (drop ordinals, send failures) until it exits, and a
            // ledger taken while it still runs could miss a tail entry.
            if src_handle.join().is_err() {
                report
                    .protocol_errors
                    .push(ProtocolError::ThreadPanicked { thread: "source" });
            }
            report.faults = injector.take_ledger();
            let mut lost_tuples: Vec<(Key, u64)> = lost.into_iter().collect();
            lost_tuples.sort_unstable_by_key(|&(k, _)| k);
            report.lost_tuples = lost_tuples;
            match sampler.join() {
                Ok(t) => report.throughput = t,
                Err(_) => report.protocol_errors.push(ProtocolError::ThreadPanicked {
                    thread: "throughput sampler",
                }),
            }
            if let Some(h) = col_handle {
                match h.join() {
                    Ok(r) => report.collector_result = r,
                    Err(_) => report.protocol_errors.push(ProtocolError::ThreadPanicked {
                        thread: "collector",
                    }),
                }
            }
            // Every thread's recorder has flushed by now (workers drained,
            // source and collector joined). Force-close any span still
            // open — an op the teardown outran — as Abandoned, in epoch
            // order, then merge the run's trace into the report.
            let mut leftover: Vec<u64> = open_spans.drain().collect();
            leftover.sort_unstable();
            for epoch in leftover {
                rec.span_close(epoch, Outcome::Abandoned);
            }
            drop(rec);
            report.trace = sink.take_log();
            report.final_states.sort_unstable_by_key(|&(k, _)| k);
        });

        report.wall = t0.elapsed();
        report.mean_throughput = report.processed as f64 / report.wall.as_secs_f64().max(1e-9);
        report
    }
}

/// The source-thread data plane: router, fan-out accumulators, pause
/// buffer, and the batch-buffer free list.
///
/// Every `batch_size` staged tuples are routed with one
/// [`SourceRouter::route_batch`] call, scattered into per-destination
/// buffers, and shipped as one [`Message::TupleBatch`] per destination
/// touched. Every routed batch is flushed whole before control messages
/// are drained (polling happens only between routed batches), so the
/// accumulators are empty at every poll point: a `PauseAck` never races
/// unsent data and the FIFO consistency argument (see crate docs)
/// carries over from the per-tuple protocol unchanged.
/// What the source is holding back during an in-flight control op.
enum PauseFilter {
    /// Migration: the affected key set `Δ(F, F′)`.
    Keys(FxHashSet<Key>),
    /// Scale-in: everything routed to the retiring destination. Evaluated
    /// *after* routing (in [`SourcePlane::ship`]), because membership is a
    /// property of the route, not the key.
    Dest(TaskId),
}

struct SourcePlane {
    router: SourceRouter,
    worker_txs: Vec<Sender<Message>>,
    events: Sender<SourceEvent>,
    /// In-flight control op: epoch and the pause filter.
    paused: Option<(u64, PauseFilter)>,
    /// Tuples of paused keys, held until `Resume`.
    buffer: Vec<Tuple>,
    /// Per-destination batch accumulators (indexed by worker slot).
    fan: Vec<Vec<Tuple>>,
    /// Destinations with a non-empty accumulator, in first-touch order.
    touched: Vec<usize>,
    /// Grouped drained-buffer returns from workers and the collector.
    pool: Receiver<Vec<Vec<Tuple>>>,
    /// Local free list fed from the pool.
    free: Vec<Vec<Tuple>>,
    /// Routing scratch, reused across batches.
    keys: Vec<Key>,
    dests: Vec<TaskId>,
    batch: usize,
    per_tuple: bool,
    /// Dead worker slots (`DeadDest`, or a send failure observed first-
    /// hand): routed tuples divert past them in [`SourcePlane::send_msg`]
    /// until a `ReviveDest` swaps in a fresh channel.
    dead: FxHashSet<usize>,
    /// Shared fault injector: ack sends honour injected control drops.
    injector: Arc<FaultInjector>,
}

impl SourcePlane {
    /// A buffer from the free list (refilled from the pool channel), or a
    /// fresh one on a miss (only until enough buffers circulate).
    fn take_buf(&mut self) -> Vec<Tuple> {
        if let Some(buf) = self.free.pop() {
            return buf;
        }
        if let Ok(group) = self.pool.try_recv() {
            self.free.extend(group);
            if let Some(buf) = self.free.pop() {
                return buf;
            }
        }
        Vec::with_capacity(self.batch)
    }

    /// Drains every pending pool return into the free list and bounds
    /// it. Called at control-poll points: in the scalar shape `ship`
    /// never consumes buffers, yet collector-emission buffers still
    /// return here — without reclamation the unbounded pool channel
    /// would grow for the whole run. The bound also caps the free list
    /// in the batched shape (excess capacity is just dropped).
    fn reclaim(&mut self) {
        while let Ok(group) = self.pool.try_recv() {
            self.free.extend(group);
        }
        let cap = self.fan.len() * 4 + 8;
        self.free.truncate(cap);
    }

    /// Routes `staged` and ships it downstream: one channel send per
    /// destination touched (or per tuple in the seed shape). Drains
    /// `staged`, preserving per-destination tuple order. Under a
    /// destination pause (scale-in), tuples routed to the quiesced worker
    /// divert to the pause buffer instead — in arrival order, so the
    /// Resume flush replays them FIFO under the new view.
    fn ship(&mut self, staged: &mut Vec<Tuple>) {
        if staged.is_empty() {
            return;
        }
        self.keys.clear();
        self.keys.extend(staged.iter().map(|t| t.key));
        let mut dests = std::mem::take(&mut self.dests);
        self.router.route_batch(&self.keys, &mut dests);
        let pause_dest = match &self.paused {
            Some((_, PauseFilter::Dest(d))) => Some(*d),
            _ => None,
        };
        if self.per_tuple {
            for (t, d) in staged.drain(..).zip(&dests) {
                if pause_dest == Some(*d) {
                    self.buffer.push(t);
                    continue;
                }
                self.send_msg(d.index(), Message::Tuple(t), 1);
            }
        } else {
            for (t, d) in staged.drain(..).zip(&dests) {
                if pause_dest == Some(*d) {
                    self.buffer.push(t);
                    continue;
                }
                let slot = &mut self.fan[d.index()];
                if slot.is_empty() {
                    self.touched.push(d.index());
                }
                slot.push(t);
            }
            for i in 0..self.touched.len() {
                let d = self.touched[i];
                let next = self.take_buf();
                let batch = std::mem::replace(&mut self.fan[d], next);
                let weight = batch.len();
                self.send_msg(d, Message::TupleBatch(batch), weight);
            }
            self.touched.clear();
        }
        self.dests = dests;
    }

    /// Ships one message to `dest`, diverting past dead slots (the slot
    /// index cycled to the next live one — the same rule the controller's
    /// re-route pins into the table, so a divert under a stale view lands
    /// where the re-route will). A send failure means the worker died
    /// under us before the controller could say so: mark the slot,
    /// report it once, and re-divert — the message is recovered from the
    /// failed send, so nothing is silently dropped.
    fn send_msg(&mut self, dest: usize, msg: Message, weight: usize) {
        let mut d = dest;
        let mut msg = msg;
        loop {
            if self.dead.contains(&d) {
                let n = self.router.n_tasks();
                let nd = next_live(d, n, |x| self.dead.contains(&x));
                if self.dead.contains(&nd) {
                    // Every slot is dead — unreachable in practice
                    // (worker 0 is never fault-injected), and with no
                    // live channel there is nowhere to account it either.
                    return;
                }
                d = nd;
            }
            match self.worker_txs[d].send_weighted(msg, weight) {
                Ok(()) => return,
                Err(e) => {
                    if self.dead.insert(d) {
                        // The event channel outlives the source (the
                        // controller joins it before dropping the
                        // receiver), so this send cannot disconnect.
                        let _ = self.events.send(SourceEvent::SendFailed {
                            dest: TaskId::from(d),
                        });
                    }
                    msg = e.0;
                }
            }
        }
    }

    /// Sends a controller-bound ack, honouring an injected control drop.
    /// The event channel outlives the source (see `send_msg`), so the
    /// discarded send result can only ever be `Ok`.
    fn ack(&self, ev: SourceEvent, kind: CtlKind) {
        if !self.injector.is_passive() && self.injector.should_drop(kind) {
            return;
        }
        let _ = self.events.send(ev);
    }

    /// Handles one control message; returns false on Shutdown.
    fn handle_ctl(&mut self, msg: SourceCtl) -> bool {
        match msg {
            SourceCtl::Pause { epoch, affected } => {
                // Re-arming an identical pause (a deadline-retried Pause
                // whose ack was dropped) is idempotent: overwrite and
                // re-ack.
                self.paused = Some((epoch, PauseFilter::Keys(affected.into_iter().collect())));
                self.ack(SourceEvent::PauseAck { epoch }, CtlKind::PauseAck);
            }
            SourceCtl::PauseDest { epoch, dest } => {
                // The ack is valid here for the same reason as a key-set
                // pause: control runs only between routed batches, when
                // the fan-out accumulators are empty — everything routed
                // to `dest` so far is already in its channel.
                self.paused = Some((epoch, PauseFilter::Dest(dest)));
                self.ack(SourceEvent::PauseAck { epoch }, CtlKind::PauseAck);
            }
            SourceCtl::Resume { epoch, view } => {
                if let Some((cur, _)) = &self.paused {
                    if *cur != epoch {
                        // A deadline-retried Resume for an op that
                        // already finished must not clear a newer op's
                        // pause: ack it (the controller absorbs the
                        // duplicate by epoch) and keep holding.
                        self.ack(SourceEvent::ResumeAck { epoch }, CtlKind::ResumeAck);
                        return true;
                    }
                }
                // Clear the pause *before* flushing: the flush below runs
                // through ship(), which must not divert tuples back into
                // the buffer it is draining.
                self.paused = None;
                self.router.update(view);
                // Flush the pause buffer under the new view, batched like
                // the main path (order within each key is the buffer's
                // arrival order, which scatter preserves per destination).
                // The flush goes through ship() in batch-sized chunks, so
                // the tuple-denominated channel bound holds even for a
                // buffer that grew far beyond one batch during the pause
                // (an unchunked flush would also recycle an oversized
                // buffer into the pool, pinning its capacity for the
                // rest of the run).
                let mut buffered = std::mem::take(&mut self.buffer);
                let mut staged: Vec<Tuple> = Vec::with_capacity(self.batch);
                for t in buffered.drain(..) {
                    staged.push(t);
                    if staged.len() >= self.batch {
                        self.ship(&mut staged);
                    }
                }
                self.ship(&mut staged);
                self.buffer = buffered; // drained; keeps its capacity
                                        // Flush complete: only now may the controller shut workers
                                        // down (Message ordering across two senders is otherwise
                                        // unconstrained, and a Shutdown overtaking the flushed
                                        // tuples would drop them).
                self.ack(SourceEvent::ResumeAck { epoch }, CtlKind::ResumeAck);
            }
            SourceCtl::UpdateView { view } => self.router.update(view),
            SourceCtl::DeadDest { dest, moves } => {
                // Pin the controller's re-route into the local table (a
                // delta keeps both sides in lockstep; key-oblivious
                // routers ship no moves and rely on the divert alone),
                // then ack: the ack tells the controller no further
                // tuple can enter the dead channel, so its backlog can
                // be drained and accounted.
                self.dead.insert(dest.index());
                if !moves.is_empty() {
                    let n_tasks = self.router.n_tasks();
                    self.router
                        .update(RoutingView::TableDelta { n_tasks, moves });
                }
                let _ = self.events.send(SourceEvent::DeadDestAck { dest });
            }
            SourceCtl::ReviveDest { dest, tx } => {
                self.worker_txs[dest.index()] = tx;
                self.dead.remove(&dest.index());
            }
            SourceCtl::Shutdown => return false,
        }
        true
    }
}

/// The source thread: feeds tuples, honours pause/resume, reports
/// interval boundaries. Staging, routing, and shipping all happen per
/// batch of `config.batch_size` tuples; emission timestamps are taken
/// once per staged batch (per tuple in the seed `per_tuple` shape).
#[allow(clippy::too_many_arguments)]
fn source_loop<F>(
    mut feeder: F,
    view: RoutingView,
    worker_txs: Vec<Sender<Message>>,
    ctl: Receiver<SourceCtl>,
    events: Sender<SourceEvent>,
    pool: Receiver<Vec<Vec<Tuple>>>,
    epoch: Instant,
    config: EngineConfig,
    injector: Arc<FaultInjector>,
    mut recorder: ThreadRecorder,
) where
    F: FnMut(u64) -> Option<Vec<Tuple>> + Send,
{
    let batch = config.batch_size.max(1);
    // Control-poll granularity: at least every CTL_POLL staged tuples,
    // decoupled from the batch size so tiny batches do not pay a control
    // channel probe per send. 256 matches the pre-batching loop's bound
    // on tuples routed under a stale view.
    const CTL_POLL: usize = 256;
    let ctl_every = batch.max(CTL_POLL);
    // Batch size 1 degenerates to the scalar plane: same protocol
    // positions, no pooled-buffer indirection for zero amortization.
    let per_tuple = config.scalar_plane();
    // Scalar sends have no fan-out to size, so staging (which only sets
    // stamping and poll granularity there) stays at the poll bound.
    let stage_size = if per_tuple { ctl_every } else { batch };
    let n_slots = worker_txs.len();
    let mut plane = SourcePlane {
        router: SourceRouter::from_view(view),
        worker_txs,
        events,
        paused: None,
        buffer: Vec::new(),
        fan: (0..n_slots).map(|_| Vec::with_capacity(batch)).collect(),
        touched: Vec::with_capacity(n_slots),
        pool,
        free: Vec::new(),
        keys: Vec::with_capacity(batch),
        dests: Vec::with_capacity(batch),
        batch,
        per_tuple,
        dead: FxHashSet::default(),
        injector,
    };
    // Staging scratch, reused across batches to stay allocation-free.
    let mut staged: Vec<Tuple> = Vec::with_capacity(stage_size);
    let mut since_ctl = usize::MAX; // poll before the first batch

    let mut interval = 0u64;
    'feed: loop {
        let Some(tuples) = feeder(interval) else {
            break 'feed;
        };
        let fed = tuples.len() as u64;
        let mut pending = tuples.into_iter();
        loop {
            if since_ctl >= ctl_every {
                since_ctl = 0;
                plane.reclaim();
                while let Ok(msg) = ctl.try_recv() {
                    if !plane.handle_ctl(msg) {
                        return;
                    }
                }
            }
            // Stage the next batch, holding back keys paused for an
            // in-flight migration. One clock read stamps the whole batch;
            // the scalar shape stamps each tuple, as the seed always did.
            // The loop is bounded by tuples *consumed*, not staged: under
            // a pause that covers the hot keys, nearly everything goes to
            // the pause buffer, and a staged-only bound would starve the
            // control poll (and the Resume that empties that buffer) for
            // the rest of the interval.
            staged.clear();
            let mut consumed = 0usize;
            let batch_us = if per_tuple {
                0
            } else {
                epoch.elapsed().as_micros() as u64
            };
            while staged.len() < stage_size && consumed < stage_size {
                let Some(mut t) = pending.next() else {
                    break;
                };
                consumed += 1;
                t.emitted_us = if per_tuple {
                    epoch.elapsed().as_micros() as u64
                } else {
                    batch_us
                };
                if let Some((_, PauseFilter::Keys(affected))) = &plane.paused {
                    if affected.contains(&t.key) {
                        plane.buffer.push(t);
                        continue;
                    }
                }
                staged.push(t);
            }
            if consumed == 0 && pending.len() == 0 {
                break;
            }
            since_ctl += consumed;
            plane.ship(&mut staged);
        }
        since_ctl = usize::MAX; // interval boundary: poll immediately
        while let Ok(msg) = ctl.try_recv() {
            if !plane.handle_ctl(msg) {
                return;
            }
        }
        // Interval telemetry: routing-table shape (live entries vs.
        // tombstone debris), pool occupancy, and the interval's fed
        // total — all deterministic per seeded feed, all
        // batch-granularity.
        let (entries, tombstones) = plane.router.table_stats();
        recorder.router_snapshot(
            interval,
            entries as u64,
            tombstones as u64,
            plane.free.len() as u64,
        );
        recorder.interval_end(interval, fed);
        let _ = plane.events.send(SourceEvent::IntervalDone { interval });
        interval += 1;
    }
    let _ = plane.events.send(SourceEvent::Finished);

    // Stay responsive to control traffic (in-flight migrations) until the
    // controller says shutdown.
    while let Ok(msg) = ctl.recv() {
        if !plane.handle_ctl(msg) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::WordCountOp;
    use streambal_baselines::CoreBalancer;
    use streambal_baselines::HashPartitioner;
    use streambal_core::{BalanceParams, RebalanceStrategy};
    use streambal_workloads::FluctuatingWorkload;

    /// Reference word counts for a tuple sequence.
    fn reference_counts(tuples: &[Vec<Key>]) -> FxHashMap<Key, u64> {
        let mut m = FxHashMap::default();
        for iv in tuples {
            for &k in iv {
                *m.entry(k).or_insert(0) += 1;
            }
        }
        m
    }

    fn decode_counts(states: &[(Key, Bytes)]) -> FxHashMap<Key, u64> {
        let mut m = FxHashMap::default();
        for (k, blob) in states {
            let total: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
            *m.entry(*k).or_insert(0) += total;
        }
        m
    }

    fn small_config() -> EngineConfig {
        EngineConfig {
            n_workers: 3,
            max_workers: 3,
            channel_capacity: 256,
            collector_capacity: 64,
            batch_size: 32, // small batches: more batch boundaries under test
            per_tuple: false,
            spin_work: 10,
            window: 100, // keep everything: exact count validation
            elasticity: Box::new(HoldPolicy),
            split: None,
            preplace: true,
            fault_plan: FaultPlan::none(),
            op_deadline_intervals: 4,
            op_deadline: Duration::from_secs(5),
            round_deadline_intervals: 4,
            round_deadline: Duration::from_secs(5),
            trace: true,
        }
    }

    #[test]
    fn word_count_exact_under_hash() {
        let mut w = FluctuatingWorkload::new(200, 0.9, 3_000, 0.0, 11);
        let intervals: Vec<Vec<Key>> = (0..3).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let report = Engine::run(
            small_config(),
            Box::new(HashPartitioner::new(3)),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert_eq!(
            report.processed,
            intervals.iter().map(|v| v.len() as u64).sum()
        );
        assert_eq!(decode_counts(&report.final_states), expect);
        assert_eq!(report.rebalances, 0);
    }

    #[test]
    fn word_count_exact_under_mixed_with_migrations() {
        // Skewed + fluctuating: Mixed must fire migrations, and the final
        // counts must still be exact (no tuple lost or double-counted, no
        // state lost in flight).
        let mut w = FluctuatingWorkload::new(300, 1.0, 5_000, 0.8, 23);
        let mut intervals: Vec<Vec<Key>> = Vec::new();
        for _ in 0..5 {
            intervals.push(w.tuples());
            w.advance(3, |k| TaskId::from((k.raw() % 3) as usize));
        }
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let report = Engine::run(
            small_config(),
            Box::new(CoreBalancer::new(
                3,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.05,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert!(report.rebalances > 0, "skew must trigger migration");
        assert!(report.migrated_keys > 0);
        assert_eq!(decode_counts(&report.final_states), expect, "exactly-once");
    }

    #[test]
    fn latency_and_throughput_recorded() {
        let report = Engine::run(
            small_config(),
            Box::new(HashPartitioner::new(3)),
            |_| Box::new(WordCountOp::new()),
            |iv| (iv < 2).then(|| (0..2000u64).map(|i| Tuple::keyed(Key(i % 50))).collect()),
            None,
        );
        assert_eq!(report.processed, 4000);
        assert!(report.latency_us.count() == 4000);
        assert!(report.latency_us.mean() > 0.0);
        assert!(report.mean_throughput > 0.0);
        assert_eq!(report.interval_throughput.len(), 2);
    }

    #[test]
    fn pkg_partials_merge_to_exact_counts() {
        use crate::operator::SumCollector;
        use streambal_baselines::PkgPartitioner;
        let mut w = FluctuatingWorkload::new(100, 0.9, 4_000, 0.0, 7);
        let intervals: Vec<Vec<Key>> = (0..3)
            .map(|_| {
                let t = w.tuples();
                w.advance(3, |k| TaskId::from((k.raw() % 3) as usize));
                t
            })
            .collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let report = Engine::run(
            small_config(),
            Box::new(PkgPartitioner::new(3)),
            |_| Box::new(WordCountOp::with_partial_emission(16)),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            Some(Box::new(SumCollector::new())),
        );
        // The merged partial counts must equal the reference exactly.
        let merged: FxHashMap<Key, u64> = report
            .collector_result
            .iter()
            .map(|&(k, v)| (Key(k), v))
            .collect();
        assert_eq!(merged, expect, "partial/merge must reconstruct counts");
    }

    /// The back-compat constructor reproduces the retired knob: one
    /// spare slot, one worker added after the given interval.
    #[test]
    fn with_scale_out_at_matches_the_old_knob() {
        let config = EngineConfig::with_scale_out_at(1);
        assert_eq!(config.max_workers, config.n_workers + 1);
        let n_workers = config.n_workers;
        let report = Engine::run(
            config,
            Box::new(HashPartitioner::new(n_workers)),
            |_| Box::new(WordCountOp::new()),
            |iv| (iv < 4).then(|| (0..1500u64).map(|i| Tuple::keyed(Key(i % 40))).collect()),
            None,
        );
        assert_eq!(report.processed, 6000);
        assert_eq!(
            report.scale_events,
            vec![ScaleEvent {
                interval: 1,
                from: n_workers,
                to: n_workers + 1
            }]
        );
    }

    #[test]
    fn scale_out_adds_worker_and_keeps_counts_exact() {
        let mut w = FluctuatingWorkload::new(200, 0.9, 4_000, 0.0, 31);
        let intervals: Vec<Vec<Key>> = (0..6).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let config = EngineConfig {
            n_workers: 2,
            max_workers: 3,
            elasticity: Box::new(FixedSchedule::scale_out_at(2)),
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(CoreBalancer::new(
                2,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.1,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        // The third worker processed something after joining.
        assert!(
            report.per_worker_processed[2] > 0,
            "new worker got traffic: {:?}",
            report.per_worker_processed
        );
        assert_eq!(decode_counts(&report.final_states), expect);
        assert_eq!(
            report.scale_events,
            vec![ScaleEvent {
                interval: 2,
                from: 2,
                to: 3
            }]
        );
    }

    /// A full scale-out → scale-in cycle mid-run: the retired worker's
    /// state is re-homed losslessly (exact counts), its slot stops
    /// receiving traffic, and the report pins both events.
    #[test]
    fn scale_cycle_is_lossless_and_retires_the_worker() {
        let mut w = FluctuatingWorkload::new(250, 0.9, 4_000, 0.0, 57);
        let intervals: Vec<Vec<Key>> = (0..8).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
        let feed = intervals.clone();
        let config = EngineConfig {
            n_workers: 2,
            max_workers: 3,
            elasticity: Box::new(FixedSchedule::cycle(1, 4, 1)),
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(CoreBalancer::new(
                2,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.1,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert_eq!(
            report.scale_events,
            vec![
                ScaleEvent {
                    interval: 1,
                    from: 2,
                    to: 3
                },
                ScaleEvent {
                    interval: 4,
                    from: 3,
                    to: 2
                },
            ]
        );
        assert_eq!(report.processed, total, "tuples lost or duplicated");
        // Counts are summed per key: scale-out without state movement may
        // split a key across workers; the sum must still be exact.
        let mut got: FxHashMap<Key, u64> = FxHashMap::default();
        for (k, blob) in &report.final_states {
            let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
            *got.entry(*k).or_insert(0) += n;
        }
        assert_eq!(got, expect, "exactly-once across the cycle");
        assert!(
            report.per_worker_processed[2] > 0,
            "the transient worker processed traffic"
        );
        assert!(report.worker_seconds > 0.0);
    }

    /// Retiring into a re-provision: 2 → 3 → 2 → 3 reuses the retired
    /// slot's channel for a fresh worker, and counts stay exact.
    #[test]
    fn slot_reuse_after_scale_in_stays_exact() {
        let mut w = FluctuatingWorkload::new(150, 0.8, 3_000, 0.0, 71);
        let intervals: Vec<Vec<Key>> = (0..10).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let config = EngineConfig {
            n_workers: 2,
            max_workers: 3,
            elasticity: Box::new(FixedSchedule::new([
                (1, ScaleDecision::ScaleOut),
                (3, ScaleDecision::ScaleIn),
                (5, ScaleDecision::ScaleOut),
                (7, ScaleDecision::ScaleIn),
            ])),
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(HashPartitioner::new(2)),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert_eq!(report.scale_events.len(), 4, "{:?}", report.scale_events);
        let mut got: FxHashMap<Key, u64> = FxHashMap::default();
        for (k, blob) in &report.final_states {
            let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
            *got.entry(*k).or_insert(0) += n;
        }
        assert_eq!(got, expect, "exactly-once across two cycles");
    }

    /// A threshold policy on a ramp-up/ramp-down workload scales out at
    /// the burst and back in after it, and worker-seconds reflect the
    /// shorter high-parallelism span.
    #[test]
    fn threshold_policy_tracks_a_burst() {
        use streambal_elastic::ThresholdPolicy;
        // Interval volumes: 2 quiet, 4 burst (4×), 4 quiet; round-robin
        // over 200 keys, which hashing spreads evenly enough.
        let volumes = [800u64, 800, 3200, 3200, 3200, 3200, 800, 800, 800, 800];
        let intervals: Vec<Vec<Key>> = volumes
            .iter()
            .map(|&v| (0..v).map(|i| Key(i % 200)).collect())
            .collect();
        let expect = reference_counts(&intervals);
        // Worker cost per tuple = spin_work + 1 = 11: quiet total
        // Q = 8 800, burst total R = 35 200. On a one-core box the OS can
        // merge adjacent intervals into one stats round, so the
        // watermarks are placed to survive that blur: budget = 20 000,
        // high·budget = 14 000 — a burst round at 2 workers (mean 17 600)
        // fires, a double-merged quiet round (mean 8 800) cannot — and
        // low·budget = 12 000, below which no spreading of the 4-interval
        // quiet tail (4Q = 35 200 total) can keep *every* round's
        // survivors-mean: all ≥ 12 000 at 3 tasks needs ≥ 24 000 cost per
        // round, i.e. ≥ 96 000 in the tail. Mass conservation guarantees
        // the scale-in.
        let mut policy = ThresholdPolicy::new(21_600.0, 2, 4);
        policy.high = 0.7;
        policy.low = 0.6;
        policy.up_after = 1;
        policy.down_after = 1;
        policy.cooldown = 0;
        let feed = intervals.clone();
        let config = EngineConfig {
            n_workers: 2,
            max_workers: 4,
            elasticity: Box::new(policy),
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(HashPartitioner::new(2)),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert!(
            report.scale_events.iter().any(|e| e.to > e.from),
            "burst must trigger scale-out: {:?}",
            report.scale_events
        );
        assert!(
            report.scale_events.iter().any(|e| e.to < e.from),
            "quiet tail must trigger scale-in: {:?}",
            report.scale_events
        );
        let mut got: FxHashMap<Key, u64> = FxHashMap::default();
        for (k, blob) in &report.final_states {
            let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
            *got.entry(*k).or_insert(0) += n;
        }
        assert_eq!(got, expect, "elastic run stays exact");
    }

    /// The cold scale-out lag, pinned from both sides. With the rebalance
    /// trigger damped (so no migration can mask the effect), a *seed*
    /// (`preplace: false`) scale-out pins every churned key back to its
    /// old home: the new slot never receives a tuple for the rest of the
    /// run. Pre-placement (the default) migrates the churned keys' state
    /// into the new worker inside the scale-out quiescence window, so it
    /// takes their traffic within an interval or two of the decision —
    /// and the run stays exact either way.
    #[test]
    fn preplacement_feeds_the_new_worker_seed_never_does() {
        use streambal_core::TriggerPolicy;
        let intervals: Vec<Vec<Key>> = (0..8)
            .map(|_| (0..3_000u64).map(|i| Key(i % 300)).collect())
            .collect();
        let expect = reference_counts(&intervals);
        let damped = || {
            CoreBalancer::new(3, 100, RebalanceStrategy::Mixed, BalanceParams::default())
                .with_trigger_policy(TriggerPolicy {
                    cooldown: 0,
                    consecutive: 100, // never fires within this run
                })
        };
        let decision = 1u64;
        let run = |preplace: bool| {
            let feed = intervals.clone();
            Engine::run(
                EngineConfig {
                    max_workers: 4,
                    elasticity: Box::new(FixedSchedule::scale_out_at(decision)),
                    preplace,
                    // Small channels keep stats rounds close to interval
                    // boundaries, so the decision lands promptly.
                    channel_capacity: 64,
                    ..small_config()
                },
                Box::new(damped()),
                |_| Box::new(WordCountOp::new()),
                move |iv| {
                    feed.get(iv as usize)
                        .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
                },
                None,
            )
        };

        let pre = run(true);
        assert_eq!(pre.rebalances, 0, "trigger must stay damped");
        assert!(
            pre.migrated_keys > 0,
            "pre-placement must move the churned keys' state"
        );
        let first = pre.first_tuple_interval[3].expect("new worker fed");
        assert!(
            first <= decision + 2,
            "pre-placed worker cold for {} intervals",
            first - decision
        );
        assert!(pre.per_worker_processed[3] > 0);
        assert_eq!(decode_counts(&pre.final_states), expect, "pre-place exact");

        let seed = run(false);
        assert_eq!(seed.rebalances, 0);
        assert_eq!(
            seed.first_tuple_interval[3], None,
            "seed scale-out pins churn away: the slot must starve until a \
             rebalance that never comes"
        );
        assert_eq!(seed.per_worker_processed[3], 0);
        assert_eq!(decode_counts(&seed.final_states), expect, "seed exact");
    }

    /// The seed per-tuple shape and batch sizes 1 and 256 must all be
    /// observationally identical: exact counts, exact processed totals,
    /// exact latency sample counts.
    #[test]
    fn per_tuple_and_batched_shapes_agree() {
        let mut w = FluctuatingWorkload::new(200, 0.9, 3_000, 0.0, 19);
        let intervals: Vec<Vec<Key>> = (0..3).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
        for (per_tuple, batch_size) in [(true, 256), (false, 1), (false, 256)] {
            let config = EngineConfig {
                per_tuple,
                batch_size,
                ..small_config()
            };
            let feed = intervals.clone();
            let report = Engine::run(
                config,
                Box::new(HashPartitioner::new(3)),
                |_| Box::new(WordCountOp::new()),
                move |iv| {
                    feed.get(iv as usize)
                        .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
                },
                None,
            );
            let label = if per_tuple {
                "per-tuple".to_string()
            } else {
                format!("batch={batch_size}")
            };
            assert_eq!(report.processed, total, "{label}");
            assert_eq!(report.latency_us.count(), total, "{label}");
            assert_eq!(decode_counts(&report.final_states), expect, "{label}");
        }
    }

    /// Migration consistency under batching with the channels squeezed to
    /// almost nothing: batch flushes must never reorder around
    /// `MigrateOut`/`Shutdown` markers even when every send blocks.
    #[test]
    fn tiny_channels_with_migrations_stay_exact() {
        let mut w = FluctuatingWorkload::new(300, 1.0, 4_000, 0.8, 29);
        let mut intervals: Vec<Vec<Key>> = Vec::new();
        for _ in 0..4 {
            intervals.push(w.tuples());
            w.advance(3, |k| TaskId::from((k.raw() % 3) as usize));
        }
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let config = EngineConfig {
            channel_capacity: 4,
            collector_capacity: 2,
            batch_size: 16,
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(CoreBalancer::new(
                3,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.05,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert!(report.rebalances > 0, "skew must trigger migration");
        assert_eq!(decode_counts(&report.final_states), expect, "exactly-once");
    }

    #[test]
    fn backpressure_with_tiny_channels_terminates() {
        let config = EngineConfig {
            channel_capacity: 4,
            collector_capacity: 2,
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(HashPartitioner::new(3)),
            |_| Box::new(WordCountOp::new()),
            |iv| (iv < 2).then(|| (0..500u64).map(|i| Tuple::keyed(Key(i % 7))).collect()),
            None,
        );
        assert_eq!(report.processed, 1000);
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn mismatched_parallelism_panics() {
        let _ = Engine::run(
            small_config(), // 3 workers
            Box::new(HashPartitioner::new(2)),
            |_| Box::new(WordCountOp::new()),
            |_| None,
            None,
        );
    }
}
