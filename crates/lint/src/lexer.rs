//! A minimal Rust lexer: just enough token structure for lexical lint
//! rules.
//!
//! The guarantees the rules rely on:
//!
//! * comments, string/char literals (including raw and byte forms), and
//!   lifetimes can never be mistaken for code identifiers;
//! * identifiers are full words — `unwrap_or_default` is one token and
//!   never matches a rule looking for `unwrap`;
//! * comments are kept in the stream (with their text), because the
//!   `// SAFETY:` and `// lint: allow(...)` conventions live in them.
//!
//! Everything else — numbers, punctuation — is tokenized coarsely; the
//! rules only ever look at identifiers, a handful of ASCII puncts, and
//! comment text.

/// One lexical token, tagged with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. Full text for identifiers and comments (the rules
    /// read those); empty for literals and punctuation (opaque).
    pub text: String,
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword, as one full word.
    Ident,
    /// Single punctuation character.
    Punct(char),
    /// Line or block comment (text retained, delimiters included).
    Comment,
    /// String, raw string, byte string, or char literal (contents
    /// opaque to the rules).
    Str,
    /// Numeric literal.
    Num,
}

/// Tokenizes `src`. Never fails: unterminated constructs simply run to
/// end of input, which is the right degradation for a linter.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Comment,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Comment,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let start_line = line;
                i = scan_string(b, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime; everything else is a char.
                let k = i + 1;
                let is_lifetime = b.get(k).is_some_and(|&c| is_ident_start(c)) && {
                    let mut m = k;
                    while m < b.len() && is_ident_char(b[m]) {
                        m += 1;
                    }
                    b.get(m) != Some(&b'\'')
                };
                if is_lifetime {
                    i = k;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                } else {
                    let start_line = line;
                    i = scan_char(b, i, &mut line);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: start_line,
                    });
                }
            }
            c if is_ident_start(c) => {
                if let Some(end) = raw_or_byte_literal(b, i, &mut line) {
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                    i = end;
                } else {
                    let start = i;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                loop {
                    match b.get(i) {
                        Some(&c) if is_ident_char(c) => i += 1,
                        Some(b'.') if b.get(i + 1).is_some_and(u8::is_ascii_digit) => i += 2,
                        _ => break,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: String::new(),
                    line,
                });
            }
            c => {
                toks.push(Tok {
                    kind: TokKind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Scans a `"…"` literal starting at the opening quote; returns the
/// index just past the closing quote.
fn scan_string(b: &[u8], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans a `'…'` char literal starting at the opening quote; returns
/// the index just past the closing quote.
fn scan_char(b: &[u8], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    if b.get(i) == Some(&b'\\') {
        i += 2;
    }
    while i < b.len() && b[i] != b'\'' {
        if b[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    (i + 1).min(b.len())
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and `b'…'` starting at
/// an identifier-start position. Returns the end index when the input
/// really is such a literal, `None` when it is a plain identifier.
fn raw_or_byte_literal(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let (raw, mut j) = match (b[i], b.get(i + 1)) {
        (b'r', Some(&b'"')) | (b'r', Some(&b'#')) => (true, i + 1),
        (b'b', Some(&b'r')) if matches!(b.get(i + 2), Some(&b'"') | Some(&b'#')) => (true, i + 2),
        (b'b', Some(&b'"')) => (false, i + 1),
        (b'b', Some(&b'\'')) => return Some(scan_char(b, i + 1, line)),
        _ => return None,
    };
    if raw {
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            // `r#ident` raw identifier, not a raw string.
            return None;
        }
        j += 1;
        while j < b.len() {
            if b[j] == b'\n' {
                *line += 1;
                j += 1;
            } else if b[j] == b'"'
                && b[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == b'#')
                    .count()
                    == hashes
            {
                return Some(j + 1 + hashes);
            } else {
                j += 1;
            }
        }
        Some(j)
    } else {
        Some(scan_string(b, j, line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_are_full_words() {
        assert_eq!(
            idents("x.unwrap_or_default()"),
            vec!["x", "unwrap_or_default"]
        );
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // a comment saying unwrap()
            let s = "panic!(\"no\")";
            let r = r#"expect("nope")"#;
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "unwrap" || i == "panic" || i == "expect"));
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // `'a` must not swallow `>` as part of a char literal.
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Punct('>')));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "str"));
    }

    #[test]
    fn block_comments_nest() {
        let ids = idents("/* outer /* inner */ still comment */ code");
        assert_eq!(ids, vec!["code"]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
