//! The routing table `A` and the mixed assignment function `F` (Eq. 1).

use streambal_hashring::{FxHashMap, HashRing};

use crate::key::{Key, TaskId};

/// The explicit routing table `A ⊆ K × D`.
///
/// Holds destinations for "a handful of keys only" (paper §II); every key
/// not present falls through to the hash function. The table does **not**
/// enforce `Amax` itself — the rebalance algorithms are responsible for
/// producing tables within bound, and [`RoutingTable::len`] lets callers
/// audit them — because a hard cap here would silently corrupt an
/// assignment mid-update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTable {
    entries: FxHashMap<Key, TaskId>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Number of entries `N_A`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries (pure hash routing).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the explicit destination for `key`, if present.
    #[inline]
    pub fn get(&self, key: Key) -> Option<TaskId> {
        self.entries.get(&key).copied()
    }

    /// Inserts or replaces an entry, returning the previous destination.
    pub fn insert(&mut self, key: Key, dest: TaskId) -> Option<TaskId> {
        self.entries.insert(key, dest)
    }

    /// Removes an entry ("moves the key back" to its hash destination).
    pub fn remove(&mut self, key: Key) -> Option<TaskId> {
        self.entries.remove(&key)
    }

    /// Iterates entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, TaskId)> + '_ {
        self.entries.iter().map(|(&k, &d)| (k, d))
    }

    /// Entries sorted by key, for deterministic output in tests/logs.
    pub fn sorted_entries(&self) -> Vec<(Key, TaskId)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }
}

impl FromIterator<(Key, TaskId)> for RoutingTable {
    fn from_iter<T: IntoIterator<Item = (Key, TaskId)>>(iter: T) -> Self {
        RoutingTable {
            entries: iter.into_iter().collect(),
        }
    }
}

/// The mixed assignment function `F : K → D` of Eq. 1 — a routing table
/// over a consistent-hash fallback.
///
/// Routing a tuple costs one hash-map probe plus (on miss) one ring lookup;
/// this is the structure the upstream "tuples router" evaluates per tuple
/// (Fig. 3 / Fig. 5).
#[derive(Debug, Clone)]
pub struct AssignmentFn {
    table: RoutingTable,
    ring: HashRing,
}

impl AssignmentFn {
    /// Pure-hash assignment over `n_tasks` downstream instances.
    pub fn hash_only(n_tasks: usize) -> Self {
        AssignmentFn {
            table: RoutingTable::new(),
            ring: HashRing::new(n_tasks),
        }
    }

    /// Assignment with an explicit initial table.
    pub fn with_table(n_tasks: usize, table: RoutingTable) -> Self {
        AssignmentFn {
            table,
            ring: HashRing::new(n_tasks),
        }
    }

    /// Number of downstream task instances `N_D`.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.ring.slots()
    }

    /// Evaluates `F(k)` (Eq. 1).
    #[inline]
    pub fn route(&self, key: Key) -> TaskId {
        match self.table.get(key) {
            Some(d) => d,
            None => TaskId::from(self.ring.slot_of(key.raw())),
        }
    }

    /// Evaluates the hash fallback `h(k)` regardless of the table.
    #[inline]
    pub fn hash_route(&self, key: Key) -> TaskId {
        TaskId::from(self.ring.slot_of(key.raw()))
    }

    /// The current routing table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Replaces the routing table (the controller broadcasts `F′` in step 3
    /// of the Fig. 5 protocol), returning the old one.
    pub fn swap_table(&mut self, table: RoutingTable) -> RoutingTable {
        std::mem::replace(&mut self.table, table)
    }

    /// Inserts a single explicit entry (used to pin hash-churned keys to
    /// their physical location during scale-out).
    pub fn insert_entry(&mut self, key: Key, dest: TaskId) {
        self.table.insert(key, dest);
    }

    /// Adds a downstream instance (scale-out), returning its id. Existing
    /// table entries are preserved; only hash-routed keys may move, and
    /// only onto the new instance (consistent hashing).
    pub fn add_task(&mut self) -> TaskId {
        TaskId::from(self.ring.add_slot())
    }

    /// Normalizes the table against the ring: removes entries whose
    /// destination equals the hash destination (they waste table space).
    /// Returns how many entries were dropped.
    pub fn prune_redundant(&mut self) -> usize {
        let ring = &self.ring;
        let before = self.table.len();
        let redundant: Vec<Key> = self
            .table
            .iter()
            .filter(|&(k, d)| TaskId::from(ring.slot_of(k.raw())) == d)
            .map(|(k, _)| k)
            .collect();
        for k in redundant {
            self.table.remove(k);
        }
        before - self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_routes_by_hash() {
        let f = AssignmentFn::hash_only(4);
        for raw in 0..100u64 {
            let k = Key(raw);
            assert_eq!(f.route(k), f.hash_route(k));
            assert!(f.route(k).index() < 4);
        }
    }

    #[test]
    fn table_entry_overrides_hash() {
        let mut f = AssignmentFn::hash_only(4);
        let k = Key(7);
        let hash_dest = f.hash_route(k);
        let other = TaskId((hash_dest.0 + 1) % 4);
        let mut t = RoutingTable::new();
        t.insert(k, other);
        f.swap_table(t);
        assert_eq!(f.route(k), other);
        assert_ne!(f.route(k), hash_dest);
    }

    #[test]
    fn swap_returns_old_table() {
        let mut f = AssignmentFn::hash_only(2);
        let mut t = RoutingTable::new();
        t.insert(Key(1), TaskId(0));
        f.swap_table(t.clone());
        let old = f.swap_table(RoutingTable::new());
        assert_eq!(old, t);
        assert!(f.table().is_empty());
    }

    #[test]
    fn prune_drops_no_op_entries() {
        let mut f = AssignmentFn::hash_only(4);
        let k_same = Key(3);
        let same = f.hash_route(k_same);
        let k_diff = Key(4);
        let diff = TaskId((f.hash_route(k_diff).0 + 1) % 4);
        let mut t = RoutingTable::new();
        t.insert(k_same, same); // redundant
        t.insert(k_diff, diff); // real entry
        f.swap_table(t);
        assert_eq!(f.prune_redundant(), 1);
        assert_eq!(f.table().len(), 1);
        assert_eq!(f.route(k_diff), diff);
    }

    #[test]
    fn add_task_preserves_table_entries() {
        let mut f = AssignmentFn::hash_only(3);
        let k = Key(11);
        let pinned = TaskId(1);
        let mut t = RoutingTable::new();
        t.insert(k, pinned);
        f.swap_table(t);
        let new = f.add_task();
        assert_eq!(new, TaskId(3));
        assert_eq!(f.n_tasks(), 4);
        assert_eq!(f.route(k), pinned, "explicit entries survive scale-out");
    }

    #[test]
    fn routing_table_crud() {
        let mut t = RoutingTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(Key(1), TaskId(2)), None);
        assert_eq!(t.insert(Key(1), TaskId(3)), Some(TaskId(2)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(Key(1)), Some(TaskId(3)));
        assert_eq!(t.remove(Key(1)), Some(TaskId(3)));
        assert_eq!(t.remove(Key(1)), None);
    }

    #[test]
    fn sorted_entries_deterministic() {
        let t: RoutingTable = [
            (Key(5), TaskId(0)),
            (Key(2), TaskId(1)),
            (Key(9), TaskId(0)),
        ]
        .into_iter()
        .collect();
        let keys: Vec<u64> = t.sorted_entries().iter().map(|(k, _)| k.raw()).collect();
        assert_eq!(keys, vec![2, 5, 9]);
    }
}
