//! Minimal hand-rolled JSON for machine-readable bench output.
//!
//! The sandbox has no serde, and the data is small (a handful of bench
//! measurements per run), so this is a tiny value tree with a pretty
//! printer — just enough for `bench_results/*.json` files that are stable
//! under `diff` across PRs — plus a matching recursive-descent parser
//! ([`Json::parse`]) so the `benchdiff` tool can read two result trees
//! back and compare them.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A JSON value. Object fields keep insertion order so output is
/// deterministic and diffs stay minimal.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// A finite float; non-finite values render as `null` (JSON has no
    /// NaN/∞), which keeps a single bad measurement from corrupting the
    /// whole file.
    Num(f64),
    /// An unsigned integer, rendered exactly (no float rounding).
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Parses a JSON document (the grammar this module writes: RFC 8259
    /// minus exotic number forms our writer never emits — it accepts
    /// leading `-`, fractions, and exponents, which covers every file in
    /// `bench_results/`). Integers without fraction/exponent that fit
    /// `u64` parse as [`Json::Int`]; everything else numeric as
    /// [`Json::Num`]; `null` (the writer's non-finite encoding) as
    /// `Json::Num(f64::NAN)`.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of this node, if it is one (`Int` widens to
    /// `f64`; the writer's `null` reads back as NaN and returns `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) if v.is_finite() => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string value of this node, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `Display` for f64 is the shortest round-trip form.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => render_block(out, depth, '[', ']', items.len(), |out, i| {
                items[i].render(out, depth + 1);
            }),
            Json::Obj(fields) => render_block(out, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                out.push('"');
                escape_into(k, out);
                out.push_str("\": ");
                v.render(out, depth + 1);
            }),
        }
    }
}

/// Renders a `[...]`/`{...}` block: empty inline, otherwise one element
/// per line at `depth + 1` indentation.
fn render_block(
    out: &mut String,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut elem: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        out.push('\n');
        for _ in 0..(depth + 1) * 2 {
            out.push(' ');
        }
        elem(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    for _ in 0..depth * 2 {
        out.push(' ');
    }
    out.push(close);
}

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    /// The document; `bytes` is its byte view and `at` always sits on a
    /// char boundary (it only ever advances by ASCII steps or whole
    /// `len_utf8()` strides).
    text: &'a str,
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.at,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Num(f64::NAN)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.at += 4;
                            // Surrogates never appear in our output; map
                            // them (and any invalid scalar) to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `at` advances only by
                    // whole chars, so the boundary slice always succeeds;
                    // the checked `get` keeps that an error, not UB, if
                    // the invariant is ever broken.
                    let Some(c) = self.text.get(self.at..).and_then(|s| s.chars().next()) else {
                        return Err(self.err("not a char boundary"));
                    };
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.at += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        // Only ASCII digits/signs/dots were consumed, so the slice sits
        // on char boundaries.
        let text = &self.text[start..self.at];
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Writes `value` pretty-printed to `path`, creating parent directories.
pub fn write_json(path: impl AsRef<Path>, value: &Json) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, value.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::str("a\"b\\c\nd").to_pretty(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::Num(1.5).to_pretty(), "1.5\n");
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null\n");
        assert_eq!(Json::Int(u64::MAX).to_pretty(), "18446744073709551615\n");
        assert_eq!(Json::Bool(true).to_pretty(), "true\n");
        assert_eq!(Json::Str("\u{1}".into()).to_pretty(), "\"\\u0001\"\n");
    }

    #[test]
    fn renders_nested_pretty() {
        let v = Json::obj([
            ("name", Json::str("routing")),
            ("empty", Json::Arr(vec![])),
            (
                "rows",
                Json::Arr(vec![Json::obj([("ns", Json::Num(2.25))])]),
            ),
        ]);
        let expect = "{\n  \"name\": \"routing\",\n  \"empty\": [],\n  \"rows\": [\n    {\n      \"ns\": 2.25\n    }\n  ]\n}\n";
        assert_eq!(v.to_pretty(), expect);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::obj([
            ("name", Json::str("elastic \"bench\"\n")),
            ("ratio", Json::Num(1.57)),
            ("count", Json::Int(u64::MAX)),
            ("neg", Json::Num(-2.5)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Num(f64::NAN)), // renders as null
            ("rows", Json::Arr(vec![Json::Int(1), Json::obj([])])),
        ]);
        let parsed = Json::parse(&doc.to_pretty()).unwrap();
        // NaN breaks PartialEq; compare everything else field by field.
        assert_eq!(parsed.get("name"), doc.get("name"));
        assert_eq!(parsed.get("ratio"), doc.get("ratio"));
        assert_eq!(parsed.get("count"), doc.get("count"));
        assert_eq!(parsed.get("neg"), doc.get("neg"));
        assert_eq!(parsed.get("ok"), doc.get("ok"));
        assert_eq!(parsed.get("rows"), doc.get("rows"));
        assert!(matches!(parsed.get("missing"), Some(Json::Num(v)) if v.is_nan()));
    }

    #[test]
    fn parse_round_trips_committed_results() {
        // Every committed bench_results file must parse (the benchdiff
        // tool reads them back) and re-render identically after a parse —
        // the writer/parser pair is lossless on its own grammar.
        let dir = crate::figure::results_dir();
        let mut seen = 0;
        for entry in std::fs::read_dir(dir).expect("bench_results exists") {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = std::fs::read_to_string(&path).unwrap();
            let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(parsed.to_pretty(), text, "{} not lossless", path.display());
            seen += 1;
        }
        assert!(seen > 0, "no committed results found");
    }

    #[test]
    fn parse_accessors() {
        let v = Json::parse(r#"{"a": 1, "b": 2.5, "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("7 8").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let e = Json::parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte 0"));
    }

    #[test]
    fn write_json_creates_parents() {
        let dir = std::env::temp_dir().join("streambal_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.json");
        write_json(&path, &Json::Int(7)).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
