//! `benchdiff` — compare two `bench_results/` trees and print per-metric
//! deltas, flagging changes beyond a regression threshold.
//!
//! ```text
//! benchdiff <baseline-dir> <candidate-dir> [--threshold 0.10] [--fail-on-regression]
//! ```
//!
//! Every `*.json` file present in both trees is parsed (the hand-rolled
//! reader in `streambal_bench::json`), its numeric leaves flattened to
//! `file :: path.to.metric` keys ([`flatten_metrics`] — array elements
//! are keyed by their `id`/`name`/`label`/`bench` field when they carry
//! one, by index otherwise) and matched pairwise. A delta beyond
//! `--threshold` (relative, default 10%) is printed and classified by
//! the metric's direction from the shared table in
//! [`streambal_bench::direction`] (which lint rule L005 keeps closed
//! over the committed files):
//!
//! * **regression / improvement** when the direction is
//!   [`Direction::HigherIsBetter`] or [`Direction::LowerIsBetter`];
//! * **change** when the key is declared [`Direction::Neutral`]
//!   (reported, never fatal);
//! * **change (NO DIRECTION)** when the key is [`Direction::Unknown`] —
//!   still never fatal here, but `streambal-lint` fails CI until the key
//!   is added to the table, so a renamed throughput metric cannot
//!   silently stop gating regressions.
//!
//! Exit status: 0 normally; 2 with `--fail-on-regression` when at least
//! one *directional* metric regressed beyond the threshold — so CI can
//! run it as a non-blocking report step today and tighten later. Missing
//! files or metrics on either side are reported but never fatal (figures
//! come and go across PRs); smoke-mode files (`*.smoke.json`) compare
//! like any other when present in both trees.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use streambal_bench::direction::{direction_of, flatten_metrics, Direction};
use streambal_bench::json::Json;

/// Relative change beyond which a metric is reported.
const DEFAULT_THRESHOLD: f64 = 0.10;

fn load_metrics(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(flatten_metrics(&doc))
}

/// JSON files directly inside `dir` (one level — bench_results is flat),
/// sorted by name.
fn json_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

struct Args {
    baseline: PathBuf,
    candidate: PathBuf,
    threshold: f64,
    fail_on_regression: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut pos: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut fail_on_regression = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad threshold '{v}'"))?;
                if threshold.is_nan() || threshold < 0.0 {
                    return Err(format!("bad threshold '{v}'"));
                }
            }
            "--fail-on-regression" => fail_on_regression = true,
            "--help" | "-h" => {
                return Err("usage: benchdiff <baseline-dir> <candidate-dir> \
                     [--threshold 0.10] [--fail-on-regression]"
                    .into())
            }
            _ => pos.push(a),
        }
    }
    if pos.len() != 2 {
        return Err("usage: benchdiff <baseline-dir> <candidate-dir> \
             [--threshold 0.10] [--fail-on-regression]"
            .into());
    }
    Ok(Args {
        baseline: PathBuf::from(&pos[0]),
        candidate: PathBuf::from(&pos[1]),
        threshold,
        fail_on_regression,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "benchdiff: {} → {} (threshold {:.0}%)",
        args.baseline.display(),
        args.candidate.display(),
        args.threshold * 100.0
    );

    let base_files = json_files(&args.baseline);
    let cand_names: std::collections::BTreeSet<String> = json_files(&args.candidate)
        .iter()
        .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
        .collect();

    let mut regressions = 0usize;
    let mut improvements = 0usize;
    let mut changes = 0usize;
    let mut compared = 0usize;

    for base_path in &base_files {
        let name = base_path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        if !cand_names.contains(&name) {
            println!("  {name}: only in baseline (skipped)");
            continue;
        }
        let cand_path = args.candidate.join(&name);
        let (base, cand) = match (load_metrics(base_path), load_metrics(&cand_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                println!("  {name}: unreadable ({e})");
                continue;
            }
        };
        let mut printed_header = false;
        for (key, &b) in &base {
            let Some(&c) = cand.get(key) else { continue };
            compared += 1;
            // Relative change against the baseline magnitude; a zero
            // baseline reports only when the candidate moved off it.
            let rel = if b != 0.0 {
                (c - b) / b.abs()
            } else if c != 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            if rel.abs() <= args.threshold {
                continue;
            }
            let verdict = match direction_of(key) {
                Direction::HigherIsBetter if rel < 0.0 => "REGRESSION",
                Direction::LowerIsBetter if rel > 0.0 => "REGRESSION",
                Direction::Neutral => "change",
                // Lint rule L005 fails CI on these until the key joins
                // the table; report, never gate.
                Direction::Unknown => "change (NO DIRECTION)",
                _ => "improvement",
            };
            match verdict {
                "REGRESSION" => regressions += 1,
                "improvement" => improvements += 1,
                _ => changes += 1,
            }
            if !printed_header {
                println!("  {name}:");
                printed_header = true;
            }
            println!(
                "    {verdict:<11} {key}: {b:.4} → {c:.4} ({rel:+.1}%)",
                rel = rel * 100.0
            );
        }
        let missing = base.keys().filter(|k| !cand.contains_key(*k)).count();
        let added = cand.keys().filter(|k| !base.contains_key(*k)).count();
        if missing + added > 0 {
            if !printed_header {
                println!("  {name}:");
            }
            println!("    metrics: {missing} removed, {added} added");
        }
    }
    for name in &cand_names {
        if !base_files
            .iter()
            .any(|p| p.file_name().is_some_and(|n| n.to_string_lossy() == *name))
        {
            println!("  {name}: only in candidate (skipped)");
        }
    }

    println!(
        "compared {compared} metrics: {regressions} regressions, \
         {improvements} improvements, {changes} neutral changes beyond threshold"
    );
    if args.fail_on_regression && regressions > 0 {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_for_elasticity_metrics() {
        // Queue-depth and time-to-first-tuple count down: a drop is an
        // improvement, not a regression.
        for key in [
            "elastic.json :: preplacement.results.preplace/on.time_to_first_tuple_intervals",
            "elastic.json :: preplacement.ttft_preplace_intervals",
            "elastic.json :: preplacement.ttft_seed_intervals",
            "some.queue_depth_p99",
            "rows.w4.max_queue_tuples",
            "modeled_backlog_tuples",
        ] {
            assert_eq!(
                direction_of(key),
                Direction::LowerIsBetter,
                "{key} must count down"
            );
        }
    }

    #[test]
    fn directions_for_table_maintenance_metrics() {
        // The routing bench's mutation-latency rows count down: a faster
        // rebuild or delta apply is an improvement.
        for key in [
            "routing.json :: results.rebuild/3000000.ns_per_key",
            "routing.json :: results.apply_delta/300000.mean_ns",
            "routing.json :: results.compiled_batched/hit.ns_per_key",
            "mutation_wall_time",
        ] {
            assert_eq!(
                direction_of(key),
                Direction::LowerIsBetter,
                "{key} must count down"
            );
        }
        // The derived speedups count up — "speedup" wins even though the
        // key also names the down-counting rows it derives from.
        for key in [
            "mutation_speedup_delta_vs_rebuild.300000",
            "prefetch_speedup_batched_vs_scalar.hit/3000000",
        ] {
            assert_eq!(
                direction_of(key),
                Direction::HigherIsBetter,
                "{key} must count up"
            );
        }
    }

    #[test]
    fn directions_for_legacy_families() {
        // The existing up/down families keep their directions.
        assert_eq!(
            direction_of("results.static/w8.mean_tuples_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_of("peak_ratio_threshold_vs_static8"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_of("worker_seconds"), Direction::LowerIsBetter);
        assert_eq!(direction_of("scale_events.0.from"), Direction::Neutral);
    }
}
