//! Cross-crate integration: the full engine under every key-preserving
//! strategy must deliver exact stateful results while migrating state, and
//! the rebalanced assignment must actually converge toward balance.

use streambal::baselines::{
    CoreBalancer, HashPartitioner, Partitioner, ReadjConfig, ReadjPartitioner,
};
use streambal::core::{BalanceParams, Key, RebalanceStrategy, TaskId};
use streambal::hashring::FxHashMap;
use streambal::runtime::{Engine, EngineConfig, Tuple, WordCountOp};
use streambal::workloads::FluctuatingWorkload;

fn skewed_intervals(n: usize, seed: u64) -> Vec<Vec<Key>> {
    let mut w = FluctuatingWorkload::new(400, 1.0, 6_000, 0.6, seed);
    (0..n)
        .map(|i| {
            if i > 0 {
                w.advance(3, |k| TaskId::from((k.raw() % 3) as usize));
            }
            w.tuples()
        })
        .collect()
}

fn reference(intervals: &[Vec<Key>]) -> FxHashMap<Key, u64> {
    let mut m = FxHashMap::default();
    for iv in intervals {
        for &k in iv {
            *m.entry(k).or_insert(0) += 1;
        }
    }
    m
}

fn final_counts(report: &streambal::runtime::EngineReport) -> FxHashMap<Key, u64> {
    let mut m = FxHashMap::default();
    for (k, blob) in &report.final_states {
        let total: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
        *m.entry(*k).or_insert(0) += total;
    }
    m
}

fn run(
    partitioner: Box<dyn Partitioner>,
    intervals: &[Vec<Key>],
) -> streambal::runtime::EngineReport {
    let feed = intervals.to_vec();
    Engine::run(
        EngineConfig {
            n_workers: 3,
            max_workers: 3,
            spin_work: 20,
            window: 100, // retain everything: exact count validation
            ..EngineConfig::default()
        },
        partitioner,
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    )
}

#[test]
fn every_key_preserving_strategy_is_exactly_once() {
    let intervals = skewed_intervals(5, 77);
    let expect = reference(&intervals);
    let strategies: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("hash", Box::new(HashPartitioner::new(3))),
        (
            "mixed",
            Box::new(CoreBalancer::new(
                3,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.05,
                    ..BalanceParams::default()
                },
            )),
        ),
        (
            "mintable",
            Box::new(CoreBalancer::new(
                3,
                100,
                RebalanceStrategy::MinTable,
                BalanceParams {
                    theta_max: 0.05,
                    ..BalanceParams::default()
                },
            )),
        ),
        (
            "minmig",
            Box::new(CoreBalancer::new(
                3,
                100,
                RebalanceStrategy::MinMig,
                BalanceParams {
                    theta_max: 0.05,
                    ..BalanceParams::default()
                },
            )),
        ),
        (
            "readj",
            Box::new(ReadjPartitioner::new(
                3,
                100,
                ReadjConfig {
                    theta_max: 0.05,
                    sigma: 0.01,
                    max_actions: 256,
                },
            )),
        ),
    ];
    for (name, p) in strategies {
        let report = run(p, &intervals);
        assert_eq!(
            final_counts(&report),
            expect,
            "{name}: counts diverged (migrations must be exactly-once)"
        );
    }
}

#[test]
fn mixed_migrates_and_balances_worker_load() {
    // 10 intervals, not 6: Mixed's spread advantage accrues over the time
    // spent under rebalanced tables, while its reaction latency (pause →
    // migrate → resume) is paid per rebalance and inflates when the test
    // binary's engines contend for cores. A longer run keeps the
    // advantage comfortably above scheduling noise so the zero-margin
    // comparison below cannot tie.
    let intervals = skewed_intervals(10, 99);
    let mixed = run(
        Box::new(CoreBalancer::new(
            3,
            100,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.05,
                ..BalanceParams::default()
            },
        )),
        &intervals,
    );
    assert!(mixed.rebalances > 0, "fluctuating skew must trigger");
    assert!(mixed.migrated_bytes > 0);

    let hash = run(Box::new(HashPartitioner::new(3)), &intervals);
    let spread = |per: &[u64]| {
        let total: u64 = per.iter().sum();
        let max = *per.iter().max().unwrap();
        max as f64 / (total as f64 / per.len() as f64)
    };
    let mixed_spread = spread(&mixed.per_worker_processed[..3]);
    let hash_spread = spread(&hash.per_worker_processed[..3]);
    assert!(
        mixed_spread < hash_spread,
        "mixed per-worker spread {mixed_spread:.3} must beat hash {hash_spread:.3}"
    );
}

#[test]
fn migration_volume_respects_strategy_ordering() {
    // MinTable cleans the whole table every rebalance; MinMig moves the
    // minimum. Mixed sits between. Compare total migrated bytes on the
    // same input.
    let intervals = skewed_intervals(6, 123);
    let bytes_of = |strategy: RebalanceStrategy| {
        let report = run(
            Box::new(CoreBalancer::new(
                3,
                100,
                strategy,
                BalanceParams {
                    theta_max: 0.05,
                    table_max: usize::MAX,
                    ..BalanceParams::default()
                },
            )),
            &intervals,
        );
        report.migrated_bytes
    };
    let minmig = bytes_of(RebalanceStrategy::MinMig);
    let mintable = bytes_of(RebalanceStrategy::MinTable);
    assert!(
        minmig <= mintable,
        "MinMig ({minmig}) must not migrate more than MinTable ({mintable})"
    );
}
