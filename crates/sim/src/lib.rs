//! Interval-driven simulator for algorithm-level experiments.
//!
//! The paper's Figs. 7–12 and the appendix figures measure *scheduling*
//! quality — workload skewness, plan-generation time, migration cost,
//! routing-table size — which depend only on the per-interval key
//! statistics and the partitioner's decisions, not on tuple-level
//! execution. This crate drives a [`Partitioner`] over an
//! [`IntervalSource`] without materializing tuples, so million-key sweeps
//! finish in seconds. (Throughput/latency figures need the real engine —
//! `streambal-runtime`.)
//!
//! The simulator assumes key-grouping semantics (every key maps to one
//! task); PKG's split-key routing only appears in the runtime experiments,
//! exactly as in the paper.

pub mod report;
pub mod source;

pub use report::SimReport;
pub use source::IntervalSource;

use streambal_core::{loads_of, Key, Partitioner, RebalanceInput, TaskId};
use streambal_metrics::Stopwatch;

/// Simulation dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Downstream parallelism `N_D`.
    pub n_tasks: usize,
    /// Number of intervals to run.
    pub intervals: usize,
}

/// Runs `partitioner` against `source` for `cfg.intervals` intervals and
/// collects the paper's scheduling metrics.
///
/// Per interval: the source advances (its fluctuation process sees the
/// partitioner's current destinations, as the paper's generator does),
/// loads are evaluated under the current assignment, and the partitioner's
/// `end_interval` runs under a stopwatch.
pub fn run_sim(
    partitioner: &mut dyn Partitioner,
    source: &mut dyn IntervalSource,
    cfg: &SimConfig,
) -> SimReport {
    let mut report = SimReport::new(partitioner.name(), cfg.n_tasks);
    // Batch scratch reused across intervals: the destination evaluation is
    // the simulator's per-key hot loop, so it goes through `route_batch`
    // (one call per interval) instead of a map probe per key.
    let mut keys: Vec<Key> = Vec::new();
    let mut dests: Vec<TaskId> = Vec::new();
    for interval in 0..cfg.intervals {
        let stats = source.next_interval(cfg.n_tasks, &mut |k| partitioner.route(k));
        // Loads under the current assignment (before any rebalance).
        keys.clear();
        keys.extend(stats.iter().map(|(k, _)| k));
        partitioner.route_batch(&keys, &mut dests);
        let records_input = RebalanceInput {
            n_tasks: cfg.n_tasks,
            records: {
                let mut v = Vec::with_capacity(stats.len());
                for ((k, s), &d) in stats.iter().zip(&dests) {
                    v.push(streambal_core::KeyRecord {
                        key: k,
                        cost: s.cost,
                        mem: s.mem,
                        current: d,
                        hash_dest: d, // unused for load accounting
                    });
                }
                v
            },
        };
        let summary = loads_of(&records_input.records, cfg.n_tasks);
        report.observe_interval(interval, &summary);

        let watch = Stopwatch::start();
        let outcome = partitioner.end_interval(stats);
        let elapsed_ms = watch.elapsed_ms();
        if let Some(out) = outcome {
            report.observe_rebalance(interval, elapsed_ms, &out);
        }
    }
    report
}

/// Convenience for Fig. 7: per-task average workload skewness under any
/// static routing function, over `intervals` intervals of `source`.
pub fn skewness_samples(
    route: &mut dyn FnMut(Key) -> TaskId,
    source: &mut dyn IntervalSource,
    n_tasks: usize,
    intervals: usize,
) -> Vec<f64> {
    let mut sums = vec![0.0f64; n_tasks];
    for _ in 0..intervals {
        let stats = source.next_interval(n_tasks, route);
        let mut loads = vec![0u64; n_tasks];
        for (k, s) in stats.iter() {
            loads[route(k).index()] += s.cost;
        }
        let mean = loads.iter().sum::<u64>() as f64 / n_tasks as f64;
        if mean > 0.0 {
            for (d, &l) in loads.iter().enumerate() {
                sums[d] += l as f64 / mean;
            }
        }
    }
    let mut out: Vec<f64> = sums.iter().map(|s| s / intervals as f64).collect();
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use source::ZipfSource;
    use streambal_baselines::CoreBalancer;
    use streambal_baselines::HashPartitioner;
    use streambal_core::{BalanceParams, RebalanceStrategy};

    fn zipf_source(k: usize, z: f64, f: f64) -> ZipfSource {
        ZipfSource::new(k, z, 50_000, f, 77)
    }

    #[test]
    fn hash_partitioner_never_rebalances_but_skews() {
        let cfg = SimConfig {
            n_tasks: 8,
            intervals: 10,
        };
        let mut p = HashPartitioner::new(8);
        let mut src = zipf_source(2_000, 0.9, 0.5);
        let report = run_sim(&mut p, &mut src, &cfg);
        assert_eq!(report.rebalances, 0);
        assert!(
            report.mean_skewness() > 1.05,
            "zipf through hash must skew: {}",
            report.mean_skewness()
        );
    }

    #[test]
    fn mixed_keeps_theta_below_hash() {
        // Note: the pre-rebalance θ each interval is bounded below by the
        // fluctuation rate f (the generator injects that much shift), so
        // the comparison uses a moderate f where repair is visible.
        let cfg = SimConfig {
            n_tasks: 8,
            intervals: 12,
        };
        let mut hash = HashPartitioner::new(8);
        let mut src1 = zipf_source(2_000, 0.9, 0.2);
        let hash_report = run_sim(&mut hash, &mut src1, &cfg);

        let mut mixed = CoreBalancer::new(
            8,
            5,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.08,
                ..BalanceParams::default()
            },
        );
        let mut src2 = zipf_source(2_000, 0.9, 0.2);
        let mixed_report = run_sim(&mut mixed, &mut src2, &cfg);

        assert!(mixed_report.rebalances > 0, "skew must trigger Mixed");
        assert!(
            mixed_report.mean_theta_after_warmup() < hash_report.mean_theta_after_warmup(),
            "Mixed θ {} !< hash θ {}",
            mixed_report.mean_theta_after_warmup(),
            hash_report.mean_theta_after_warmup()
        );
        // And the plans themselves land under (or near) θmax.
        assert!(
            mixed_report.theta_after.mean() < 0.15,
            "post-rebalance θ {}",
            mixed_report.theta_after.mean()
        );
    }

    /// Regression for the under-load false-trigger: a key population that
    /// permanently leaves one hash slot idle is *under*-loaded on that
    /// slot only — no task exceeds `Lmax` — so Mixed must not fire a
    /// single rebalance (it used to fire, and pay migrations, on every
    /// interval of exactly this shape).
    #[test]
    fn mixed_ignores_permanently_idle_hash_slot() {
        use source::ReplaySource;
        use streambal_core::{AssignmentFn, IntervalStats};
        let n_tasks = 4;
        let idle = TaskId(3);
        // The probe ring is the same deterministic ring CoreBalancer
        // builds, so this filter exactly carves out an idle slot.
        let probe = AssignmentFn::hash_only(n_tasks);
        let keys: Vec<Key> = (0..40_000u64)
            .map(Key)
            .filter(|&k| probe.hash_route(k) != idle)
            .take(9_000)
            .collect();
        let mut iv = IntervalStats::new();
        for &k in &keys {
            iv.observe(k, 1, 1, 1);
        }
        let intervals = 6;
        let mut src = ReplaySource::new(std::iter::repeat_n(iv, intervals));
        let mut p = CoreBalancer::new(
            n_tasks,
            5,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.5,
                ..BalanceParams::default()
            },
        );
        let cfg = SimConfig { n_tasks, intervals };
        let report = run_sim(&mut p, &mut src, &cfg);
        // The idle slot keeps max θ pinned at 1.0 > θmax the whole run…
        assert!(
            report.theta_series.points().iter().all(|&(_, t)| t > 0.9),
            "idle slot must dominate θ: {:?}",
            report.theta_series.points()
        );
        // …yet no task is overloaded, so zero rebalances and migrations.
        assert_eq!(report.rebalances, 0, "under-load alone fired a rebalance");
        assert_eq!(report.mig_fraction.count(), 0);
    }

    #[test]
    fn skewness_samples_sorted_and_mean_one() {
        let mut src = zipf_source(5_000, 0.85, 0.0);
        let mut p = HashPartitioner::new(10);
        let mut route = |k: Key| p.route(k);
        let samples = skewness_samples(&mut route, &mut src, 10, 5);
        assert_eq!(samples.len(), 10);
        for w in samples.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let mean: f64 = samples.iter().sum::<f64>() / 10.0;
        assert!((mean - 1.0).abs() < 0.01, "normalized mean ≈ 1, got {mean}");
    }

    #[test]
    fn report_counts_intervals() {
        let cfg = SimConfig {
            n_tasks: 4,
            intervals: 7,
        };
        let mut p = HashPartitioner::new(4);
        let mut src = zipf_source(500, 0.5, 0.0);
        let report = run_sim(&mut p, &mut src, &cfg);
        assert_eq!(report.theta_series.len(), 7);
    }
}
