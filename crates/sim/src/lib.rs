//! Interval-driven simulator for algorithm-level experiments.
//!
//! The paper's Figs. 7–12 and the appendix figures measure *scheduling*
//! quality — workload skewness, plan-generation time, migration cost,
//! routing-table size — which depend only on the per-interval key
//! statistics and the partitioner's decisions, not on tuple-level
//! execution. This crate drives a [`Partitioner`] over an
//! [`IntervalSource`] without materializing tuples, so million-key sweeps
//! finish in seconds. (Throughput/latency figures need the real engine —
//! `streambal-runtime`.)
//!
//! The simulator models key-grouping semantics plus hot-key splitting:
//! every key maps to one task unless a [`SplitPolicy`]
//! ([`run_sim_elastic_split`]) salts it across replica slots. The split
//! *decision* layer runs here exactly as on the engine — same
//! observation shape, same guards, same event records — so a split plan
//! drafted in the simulator replays on the runtime `SplitEvent` for
//! `SplitEvent`. Only the tuple-level consequences (replica partials,
//! the merge stage) need the real engine.

pub mod report;
pub mod source;

pub use report::SimReport;
pub use source::IntervalSource;

use streambal_core::{loads_of, Key, Partitioner, RebalanceInput, TaskId};
use streambal_elastic::{
    choose_replicas, ElasticityPolicy, HoldPolicy, IntervalObservation, ScaleDecision, ScaleEvent,
    SplitDecision, SplitEvent, SplitObservation, SplitPolicy,
};
use streambal_metrics::Stopwatch;

/// Simulation dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Downstream parallelism `N_D`.
    pub n_tasks: usize,
    /// Number of intervals to run.
    pub intervals: usize,
}

/// Runs `partitioner` against `source` for `cfg.intervals` intervals and
/// collects the paper's scheduling metrics. Parallelism stays fixed at
/// `cfg.n_tasks` (a [`HoldPolicy`]); see [`run_sim_elastic`] for
/// policy-driven elasticity.
pub fn run_sim(
    partitioner: &mut dyn Partitioner,
    source: &mut dyn IntervalSource,
    cfg: &SimConfig,
) -> SimReport {
    run_sim_elastic(partitioner, source, cfg, &mut HoldPolicy, cfg.n_tasks)
}

/// Deterministic queue/latency proxy for [`run_sim_elastic_queued`]: the
/// simulator has no physical channels, so the backpressure signals the
/// engine samples (tuple-weighted channel occupancy at interval close,
/// per-interval latency) are modeled as a per-task fluid queue. Each
/// interval a task receives its routed tuple count and drains up to
/// `service_rate` tuples; the standing remainder is its queue depth,
/// clamped to `channel_capacity` exactly as the engine's bounded channel
/// clamps real occupancy (beyond the bound, backpressure stalls the
/// source instead of growing the queue). Latency is a sojourn proxy:
/// a tuple waits `us_per_tuple` behind the standing backlog plus half
/// its own interval's cohort — coarse, but it moves when and only when
/// queues move, which is all a watermark policy consumes.
#[derive(Debug, Clone, Copy)]
pub struct QueueModel {
    /// Tuples one task drains per interval.
    pub service_rate: f64,
    /// Queue-depth clamp, in tuples (the engine's `channel_capacity`).
    pub channel_capacity: u64,
    /// Modeled service time per tuple, µs (latency conversion).
    pub us_per_tuple: f64,
}

impl QueueModel {
    /// No backpressure modeling: infinite service rate, so queue depths
    /// and latencies observe as zero (the pre-queue-signal behaviour).
    pub fn none() -> Self {
        QueueModel {
            service_rate: f64::INFINITY,
            channel_capacity: 0,
            us_per_tuple: 0.0,
        }
    }
}

/// [`run_sim`] with an elasticity hook: the same per-interval decision
/// sequence the engine's controller runs, recorded in the same
/// [`SimReport::scale_events`] shape as `EngineReport::scale_events` so
/// traces compare with `==`. Queue/latency observations are zero (see
/// [`run_sim_elastic_queued`] for the modeled backpressure signals).
pub fn run_sim_elastic(
    partitioner: &mut dyn Partitioner,
    source: &mut dyn IntervalSource,
    cfg: &SimConfig,
    policy: &mut dyn ElasticityPolicy,
    max_tasks: usize,
) -> SimReport {
    run_sim_elastic_queued(
        partitioner,
        source,
        cfg,
        policy,
        max_tasks,
        QueueModel::none(),
    )
}

/// [`run_sim_elastic`] with modeled backpressure signals: per-task queue
/// depths and interval latency from a [`QueueModel`] fluid queue, filled
/// into the same [`IntervalObservation`] fields the engine samples from
/// its real channels — so queue-driven policies
/// (`streambal_elastic::BackpressurePolicy`) plan in the simulator and
/// replay on the engine exactly like load-driven ones.
///
/// Per interval, in engine order: the source advances (its fluctuation
/// process sees the partitioner's current destinations), loads are
/// evaluated under the current assignment, the queue model absorbs the
/// interval's arrivals, the policy decides on those observations —
/// `ScaleOut` applies `Partitioner::scale_out_plan` (clamped at
/// `max_tasks`; the pre-placement moves are notional here, state being
/// simulated, but the *routing* delta matches the engine's exactly),
/// `ScaleIn` applies `Partitioner::scale_in` on the highest-numbered
/// task (clamped at one task) — and only then does `end_interval` run
/// under the stopwatch, exactly as the controller consults the policy
/// before the rebalance hook.
///
/// One divergence from the engine is inherent: the simulator has no
/// physical state to drain, so a scale-in is instantaneous here, while
/// the engine re-provisions over its retire protocol and *skips* a
/// `ScaleOut` decided before queued retires finish (its spawn slot must
/// be the contiguous physical tail). A policy that flaps in→out across
/// adjacent intervals can therefore record a `ScaleOut` event here that
/// the engine drops; traces are identical whenever consecutive opposite
/// decisions are at least one engine re-provision apart (any policy with
/// hysteresis or a cooldown, and every fixed schedule that spaces its
/// reversals — `tests/elasticity.rs` pins the replay identity).
pub fn run_sim_elastic_queued(
    partitioner: &mut dyn Partitioner,
    source: &mut dyn IntervalSource,
    cfg: &SimConfig,
    policy: &mut dyn ElasticityPolicy,
    max_tasks: usize,
    model: QueueModel,
) -> SimReport {
    run_sim_inner(partitioner, source, cfg, policy, max_tasks, model, None)
}

/// [`run_sim_elastic_queued`] with the hot-key split hook: after the
/// elasticity decision (and before `end_interval`, exactly where the
/// engine's controller consults `EngineConfig::split`), the split policy
/// sees the interval's per-key costs and the current split set, and its
/// decisions execute through [`Partitioner::split_key`] /
/// [`Partitioner::unsplit_key`] with the same guards and the same
/// replica-slot choice ([`choose_replicas`] over the interval's task
/// loads) as the engine. Executed decisions land in
/// [`SimReport::split_events`] in the engine's `SplitEvent` shape, so
/// sim and runtime split traces pin with `==` — the engine's only extra
/// step is shipping the view (and, for unsplit, the replica partials)
/// through its pause/quiesce protocol, which changes no decision.
///
/// The same-interval caveat as scale events applies: a split decided in
/// the interval a scale decision also fired can see a one-task-newer
/// routing here (the sim applies scale instantly, the engine queues it),
/// so identical traces need the two decision kinds at least one interval
/// apart — free with any cooldown-carrying policy.
pub fn run_sim_elastic_split(
    partitioner: &mut dyn Partitioner,
    source: &mut dyn IntervalSource,
    cfg: &SimConfig,
    policy: &mut dyn ElasticityPolicy,
    max_tasks: usize,
    model: QueueModel,
    split: &mut dyn SplitPolicy,
) -> SimReport {
    run_sim_inner(
        partitioner,
        source,
        cfg,
        policy,
        max_tasks,
        model,
        Some(split),
    )
}

fn run_sim_inner(
    partitioner: &mut dyn Partitioner,
    source: &mut dyn IntervalSource,
    cfg: &SimConfig,
    policy: &mut dyn ElasticityPolicy,
    max_tasks: usize,
    model: QueueModel,
    mut split: Option<&mut dyn SplitPolicy>,
) -> SimReport {
    let mut report = SimReport::new(partitioner.name(), cfg.n_tasks);
    // Batch scratch reused across intervals: the destination evaluation is
    // the simulator's per-key hot loop, so it goes through `route_batch`
    // (one call per interval) instead of a map probe per key.
    let mut keys: Vec<Key> = Vec::new();
    let mut dests: Vec<TaskId> = Vec::new();
    // Modeled standing backlog per task, in tuples.
    let mut backlog: Vec<f64> = vec![0.0; cfg.n_tasks];
    for interval in 0..cfg.intervals {
        let n_tasks = partitioner.n_tasks();
        let stats = source.next_interval(n_tasks, &mut |k| partitioner.route(k));
        // Loads under the current assignment (before any rebalance).
        keys.clear();
        keys.extend(stats.iter().map(|(k, _)| k));
        partitioner.route_batch(&keys, &mut dests);
        let records_input = RebalanceInput {
            n_tasks,
            records: {
                let mut v = Vec::with_capacity(stats.len());
                for ((k, s), &d) in stats.iter().zip(&dests) {
                    v.push(streambal_core::KeyRecord {
                        key: k,
                        cost: s.cost,
                        mem: s.mem,
                        current: d,
                        hash_dest: d, // unused for load accounting
                    });
                }
                v
            },
        };
        let summary = loads_of(&records_input.records, n_tasks);
        report.observe_interval(interval, &summary);

        // Queue model: absorb this interval's per-task arrivals, drain
        // the service rate, clamp to the channel bound — the state at
        // interval close is what the engine's controller samples.
        let mut arrivals = vec![0.0f64; n_tasks];
        for ((_, s), &d) in stats.iter().zip(&dests) {
            arrivals[d.index()] += s.freq as f64;
        }
        let mut queues: Vec<u64> = Vec::with_capacity(n_tasks);
        let mut lat_weighted = 0.0f64;
        let mut lat_total = 0.0f64;
        let mut p99 = 0.0f64;
        for d in 0..n_tasks {
            let standing = backlog[d];
            let after = (standing + arrivals[d] - model.service_rate)
                .max(0.0)
                .min(model.channel_capacity as f64);
            backlog[d] = after;
            queues.push(after.round() as u64);
            // Sojourn proxy: wait behind the standing backlog plus half
            // the own cohort (mean); the cohort's last tuple (p99-ish)
            // waits behind all of it.
            let mean_d = model.us_per_tuple * (standing + arrivals[d] * 0.5);
            lat_weighted += mean_d * arrivals[d];
            lat_total += arrivals[d];
            p99 = p99.max(model.us_per_tuple * (standing + arrivals[d]));
        }
        let mean_latency_us = if lat_total > 0.0 {
            lat_weighted / lat_total
        } else {
            0.0
        };

        // Elasticity decision on this interval's observations, mirroring
        // the engine's controller (clamped decisions are skipped, and the
        // policy is not told — it keeps deciding from observations).
        let obs = IntervalObservation {
            interval: interval as u64,
            n_tasks,
            loads: &summary.loads,
            queue_depths: &queues,
            mean_latency_us,
            p99_latency_us: p99,
            n_dead: 0, // the simulator models no worker failures
        };
        match policy.decide(&obs) {
            ScaleDecision::ScaleOut if n_tasks < max_tasks => {
                // The engine's pre-placement path: churned keys follow
                // the grown ring (their simulated state moves with them
                // for free — only the routing delta matters here).
                let _ = partitioner.scale_out_plan(&keys);
                backlog.push(0.0); // the new slot joins drained
                report.observe_scale(ScaleEvent {
                    interval: interval as u64,
                    from: n_tasks,
                    to: n_tasks + 1,
                });
            }
            ScaleDecision::ScaleIn if n_tasks > 1 => {
                partitioner.scale_in(TaskId::from(n_tasks - 1), &keys);
                // The victim drains its own backlog before retiring (the
                // engine's Retire marker lands behind it), so its queue
                // leaves with it.
                backlog.truncate(n_tasks - 1);
                report.observe_scale(ScaleEvent {
                    interval: interval as u64,
                    from: n_tasks,
                    to: n_tasks - 1,
                });
            }
            _ => {}
        }

        // Hot-key split decision, mirroring the engine's controller: same
        // cadence (after the scale decision, before `end_interval`), same
        // observation (per-key interval costs — a split key's entry is
        // its replicas' merged total here just as on the engine, the
        // replayed stats being per *key*), same guards, same slot choice.
        if let Some(sp) = split.as_deref_mut() {
            let key_loads: Vec<(u64, u64)> = stats.iter().map(|(k, s)| (k.raw(), s.cost)).collect();
            let mut split_keys: Vec<u64> =
                partitioner.splits().iter().map(|(k, _)| k.raw()).collect();
            split_keys.sort_unstable();
            let sobs = SplitObservation {
                interval: interval as u64,
                n_tasks,
                key_loads: &key_loads,
                split_keys: &split_keys,
            };
            match sp.decide(&sobs) {
                SplitDecision::Split { key, replicas }
                    if n_tasks >= 2 && replicas >= 2 && !split_keys.contains(&key) =>
                {
                    // The key's current route stays primary; the other
                    // slots are the least-loaded tasks (the simulator
                    // models no worker failures, so no dead-slot filter).
                    let k = Key(key);
                    let primary = partitioner.route(k);
                    let slots: Vec<TaskId> =
                        choose_replicas(primary.index(), &summary.loads, replicas)
                            .into_iter()
                            .map(TaskId::from)
                            .collect();
                    if slots.len() >= 2 && partitioner.split_key(k, &slots) {
                        report.observe_split(SplitEvent {
                            interval: interval as u64,
                            key,
                            from: 1,
                            to: slots.len(),
                        });
                    }
                }
                SplitDecision::Unsplit { key } => {
                    // No state to consolidate here — the engine's partial
                    // merge onto the primary is simulated for free.
                    if let Some(replica_set) = partitioner.unsplit_key(Key(key)) {
                        report.observe_split(SplitEvent {
                            interval: interval as u64,
                            key,
                            from: replica_set.len(),
                            to: 1,
                        });
                    }
                }
                _ => {}
            }
        }

        let watch = Stopwatch::start();
        let outcome = partitioner.end_interval(stats);
        let elapsed_ms = watch.elapsed_ms();
        if let Some(out) = outcome {
            report.observe_rebalance(interval, elapsed_ms, &out);
        }
    }
    report
}

/// Convenience for Fig. 7: per-task average workload skewness under any
/// static routing function, over `intervals` intervals of `source`.
pub fn skewness_samples(
    route: &mut dyn FnMut(Key) -> TaskId,
    source: &mut dyn IntervalSource,
    n_tasks: usize,
    intervals: usize,
) -> Vec<f64> {
    let mut sums = vec![0.0f64; n_tasks];
    for _ in 0..intervals {
        let stats = source.next_interval(n_tasks, route);
        let mut loads = vec![0u64; n_tasks];
        for (k, s) in stats.iter() {
            loads[route(k).index()] += s.cost;
        }
        let mean = loads.iter().sum::<u64>() as f64 / n_tasks as f64;
        if mean > 0.0 {
            for (d, &l) in loads.iter().enumerate() {
                sums[d] += l as f64 / mean;
            }
        }
    }
    let mut out: Vec<f64> = sums.iter().map(|s| s / intervals as f64).collect();
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use source::ZipfSource;
    use streambal_baselines::CoreBalancer;
    use streambal_baselines::HashPartitioner;
    use streambal_core::{BalanceParams, RebalanceStrategy};

    fn zipf_source(k: usize, z: f64, f: f64) -> ZipfSource {
        ZipfSource::new(k, z, 50_000, f, 77)
    }

    #[test]
    fn hash_partitioner_never_rebalances_but_skews() {
        let cfg = SimConfig {
            n_tasks: 8,
            intervals: 10,
        };
        let mut p = HashPartitioner::new(8);
        let mut src = zipf_source(2_000, 0.9, 0.5);
        let report = run_sim(&mut p, &mut src, &cfg);
        assert_eq!(report.rebalances, 0);
        assert!(
            report.mean_skewness() > 1.05,
            "zipf through hash must skew: {}",
            report.mean_skewness()
        );
    }

    #[test]
    fn mixed_keeps_theta_below_hash() {
        // Note: the pre-rebalance θ each interval is bounded below by the
        // fluctuation rate f (the generator injects that much shift), so
        // the comparison uses a moderate f where repair is visible.
        let cfg = SimConfig {
            n_tasks: 8,
            intervals: 12,
        };
        let mut hash = HashPartitioner::new(8);
        let mut src1 = zipf_source(2_000, 0.9, 0.2);
        let hash_report = run_sim(&mut hash, &mut src1, &cfg);

        let mut mixed = CoreBalancer::new(
            8,
            5,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.08,
                ..BalanceParams::default()
            },
        );
        let mut src2 = zipf_source(2_000, 0.9, 0.2);
        let mixed_report = run_sim(&mut mixed, &mut src2, &cfg);

        assert!(mixed_report.rebalances > 0, "skew must trigger Mixed");
        assert!(
            mixed_report.mean_theta_after_warmup() < hash_report.mean_theta_after_warmup(),
            "Mixed θ {} !< hash θ {}",
            mixed_report.mean_theta_after_warmup(),
            hash_report.mean_theta_after_warmup()
        );
        // And the plans themselves land under (or near) θmax.
        assert!(
            mixed_report.theta_after.mean() < 0.15,
            "post-rebalance θ {}",
            mixed_report.theta_after.mean()
        );
    }

    /// Regression for the under-load false-trigger: a key population that
    /// permanently leaves one hash slot idle is *under*-loaded on that
    /// slot only — no task exceeds `Lmax` — so Mixed must not fire a
    /// single rebalance (it used to fire, and pay migrations, on every
    /// interval of exactly this shape).
    #[test]
    fn mixed_ignores_permanently_idle_hash_slot() {
        use source::ReplaySource;
        use streambal_core::{AssignmentFn, IntervalStats};
        let n_tasks = 4;
        let idle = TaskId(3);
        // The probe ring is the same deterministic ring CoreBalancer
        // builds, so this filter exactly carves out an idle slot.
        let probe = AssignmentFn::hash_only(n_tasks);
        let keys: Vec<Key> = (0..40_000u64)
            .map(Key)
            .filter(|&k| probe.hash_route(k) != idle)
            .take(9_000)
            .collect();
        let mut iv = IntervalStats::new();
        for &k in &keys {
            iv.observe(k, 1, 1, 1);
        }
        let intervals = 6;
        let mut src = ReplaySource::new(std::iter::repeat_n(iv, intervals));
        let mut p = CoreBalancer::new(
            n_tasks,
            5,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.5,
                ..BalanceParams::default()
            },
        );
        let cfg = SimConfig { n_tasks, intervals };
        let report = run_sim(&mut p, &mut src, &cfg);
        // The idle slot keeps max θ pinned at 1.0 > θmax the whole run…
        assert!(
            report.theta_series.points().iter().all(|&(_, t)| t > 0.9),
            "idle slot must dominate θ: {:?}",
            report.theta_series.points()
        );
        // …yet no task is overloaded, so zero rebalances and migrations.
        assert_eq!(report.rebalances, 0, "under-load alone fired a rebalance");
        assert_eq!(report.mig_fraction.count(), 0);
    }

    #[test]
    fn skewness_samples_sorted_and_mean_one() {
        let mut src = zipf_source(5_000, 0.85, 0.0);
        let mut p = HashPartitioner::new(10);
        let mut route = |k: Key| p.route(k);
        let samples = skewness_samples(&mut route, &mut src, 10, 5);
        assert_eq!(samples.len(), 10);
        for w in samples.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let mean: f64 = samples.iter().sum::<f64>() / 10.0;
        assert!((mean - 1.0).abs() < 0.01, "normalized mean ≈ 1, got {mean}");
    }

    #[test]
    fn elastic_sim_executes_a_fixed_cycle() {
        use streambal_elastic::FixedSchedule;
        let cfg = SimConfig {
            n_tasks: 4,
            intervals: 8,
        };
        let mut p = CoreBalancer::new(
            4,
            5,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.2,
                ..BalanceParams::default()
            },
        );
        let mut src = zipf_source(3_000, 0.9, 0.3);
        let mut policy = FixedSchedule::cycle(2, 5, 1);
        let report = run_sim_elastic(&mut p, &mut src, &cfg, &mut policy, 5);
        use streambal_elastic::ScaleEvent;
        assert_eq!(
            report.scale_events,
            vec![
                ScaleEvent {
                    interval: 2,
                    from: 4,
                    to: 5
                },
                ScaleEvent {
                    interval: 5,
                    from: 5,
                    to: 4
                },
            ]
        );
        assert_eq!(p.n_tasks(), 4, "round trip restores parallelism");
        assert_eq!(report.theta_series.len(), 8);
    }

    /// Clamping: a policy demanding growth past `max_tasks` (or shrink
    /// below one task) is skipped without recording an event.
    #[test]
    fn elastic_sim_clamps_decisions() {
        use streambal_elastic::{ElasticityPolicy, IntervalObservation, ScaleDecision};
        #[derive(Debug, Clone)]
        struct Always(ScaleDecision);
        impl ElasticityPolicy for Always {
            fn name(&self) -> String {
                "always".into()
            }
            fn decide(&mut self, _obs: &IntervalObservation) -> ScaleDecision {
                self.0
            }
            fn box_clone(&self) -> Box<dyn ElasticityPolicy> {
                Box::new(self.clone())
            }
        }
        let cfg = SimConfig {
            n_tasks: 2,
            intervals: 5,
        };
        let mut p = HashPartitioner::new(2);
        let mut src = zipf_source(500, 0.5, 0.0);
        let report = run_sim_elastic(
            &mut p,
            &mut src,
            &cfg,
            &mut Always(ScaleDecision::ScaleOut),
            3,
        );
        assert_eq!(p.n_tasks(), 3, "grew to the cap and stopped");
        assert_eq!(report.scale_events.len(), 1);

        let mut p = HashPartitioner::new(2);
        let mut src = zipf_source(500, 0.5, 0.0);
        let report = run_sim_elastic(
            &mut p,
            &mut src,
            &cfg,
            &mut Always(ScaleDecision::ScaleIn),
            3,
        );
        assert_eq!(p.n_tasks(), 1, "shrank to one task and stopped");
        assert_eq!(report.scale_events.len(), 1);
    }

    /// The modeled queue proxy drives `BackpressurePolicy` exactly like
    /// the engine's sampled channel occupancy: a volume burst beyond the
    /// service rate builds a standing queue → scale out; the quiet tail
    /// drains it → scale in. Replayed load alone would show the same
    /// totals spread differently — the *queue* signal is what reacts.
    #[test]
    fn backpressure_policy_reacts_to_modeled_queues() {
        use source::ReplaySource;
        use streambal_core::IntervalStats;
        use streambal_elastic::BackpressurePolicy;
        let volumes = [400u64, 400, 1600, 1600, 400, 400, 400];
        let stats: Vec<IntervalStats> = volumes
            .iter()
            .map(|&v| {
                let mut iv = IntervalStats::new();
                for k in 0..200u64 {
                    iv.observe(Key(k), v / 200, v / 200, 8);
                }
                iv
            })
            .collect();
        let mut src = ReplaySource::new(stats);
        let mut p = HashPartitioner::new(2);
        // Service 300 t/interval/task: 2 tasks absorb the quiet 400 but
        // queue ~500/task at the 1600 burst — clamped at the channel
        // bound, exactly as real occupancy would be, so the quiet tail
        // can drain it within a couple of intervals.
        let model = QueueModel {
            service_rate: 300.0,
            channel_capacity: 256,
            us_per_tuple: 50.0,
        };
        let mut policy = BackpressurePolicy::new(100, 20, 2, 4);
        policy.down_after = 2;
        policy.cooldown = 0;
        let report = run_sim_elastic_queued(
            &mut p,
            &mut src,
            &SimConfig {
                n_tasks: 2,
                intervals: volumes.len(),
            },
            &mut policy,
            4,
            model,
        );
        assert!(
            report.scale_events.iter().any(|e| e.to > e.from),
            "burst queue must trigger scale-out: {:?}",
            report.scale_events
        );
        assert!(
            report.scale_events.iter().any(|e| e.to < e.from),
            "drained tail must trigger scale-in: {:?}",
            report.scale_events
        );
        // Without a queue model the same policy never fires: the load
        // totals are identical, the symptom is gone.
        let mut src = ReplaySource::new(
            volumes
                .iter()
                .map(|&v| {
                    let mut iv = IntervalStats::new();
                    for k in 0..200u64 {
                        iv.observe(Key(k), v / 200, v / 200, 8);
                    }
                    iv
                })
                .collect::<Vec<_>>(),
        );
        let mut p = HashPartitioner::new(2);
        let mut policy = BackpressurePolicy::new(100, 20, 2, 4);
        policy.down_after = 2;
        policy.cooldown = 0;
        let report = run_sim_elastic(
            &mut p,
            &mut src,
            &SimConfig {
                n_tasks: 2,
                intervals: volumes.len(),
            },
            &mut policy,
            4,
        );
        assert!(
            report.scale_events.is_empty(),
            "no queue signal → no symptom → no events (min_tasks clamps \
             the drained-pipeline scale-in): {:?}",
            report.scale_events
        );
    }

    /// A fixed split schedule executes through the sim loop: the key is
    /// salted mid-run, consolidated on schedule, and the event trace pins
    /// exactly (the engine replay identity is `tests/elasticity.rs`).
    #[test]
    fn split_sim_executes_a_fixed_cycle() {
        use streambal_elastic::{FixedSplitSchedule, HoldPolicy, SplitEvent};
        let cfg = SimConfig {
            n_tasks: 4,
            intervals: 6,
        };
        let mut p = HashPartitioner::new(4);
        let mut src = zipf_source(1_000, 0.9, 0.2);
        let mut split = FixedSplitSchedule::cycle(42, 3, 1, 3);
        let report = run_sim_elastic_split(
            &mut p,
            &mut src,
            &cfg,
            &mut HoldPolicy,
            4,
            QueueModel::none(),
            &mut split,
        );
        assert_eq!(
            report.split_events,
            vec![
                SplitEvent {
                    interval: 1,
                    key: 42,
                    from: 1,
                    to: 3,
                },
                SplitEvent {
                    interval: 3,
                    key: 42,
                    from: 3,
                    to: 1,
                },
            ]
        );
        assert!(p.splits().is_empty(), "cycle must restore plain routing");
        assert_eq!(report.theta_series.len(), 6);
    }

    /// `HotKeyPolicy` plans from per-key interval costs in the sim: a
    /// dominant-key burst splits once (streak + cooldown suppress flaps),
    /// and the cooled key consolidates after `down_after` quiet rounds.
    #[test]
    fn hotkey_policy_splits_the_dominant_burst_in_sim() {
        use source::ReplaySource;
        use streambal_core::IntervalStats;
        use streambal_elastic::{HoldPolicy, HotKeyPolicy, SplitEvent};
        // Interval costs: quiet, 3 burst intervals of a single dominant
        // key, quiet tail.
        let hot_cost = [0u64, 5_000, 5_000, 5_000, 0, 0, 0];
        let stats: Vec<IntervalStats> = hot_cost
            .iter()
            .map(|&h| {
                let mut iv = IntervalStats::new();
                for k in 0..20u64 {
                    iv.observe(Key(k), 10, 10, 8);
                }
                if h > 0 {
                    iv.observe(Key(999), h, h, 8);
                }
                iv
            })
            .collect();
        let mut src = ReplaySource::new(stats);
        let mut p = HashPartitioner::new(4);
        // budget = 5400/1.08 = 5000; the 5000-cost burst crosses the 0.9
        // high mark, the quiet tail sits under the 0.5 low mark. The
        // burst key carries ~96% of the interval, so share-based sizing
        // salts it across all four tasks.
        let mut hot = HotKeyPolicy::new(5_400.0);
        let report = run_sim_elastic_split(
            &mut p,
            &mut src,
            &SimConfig {
                n_tasks: 4,
                intervals: hot_cost.len(),
            },
            &mut HoldPolicy,
            4,
            QueueModel::none(),
            &mut hot,
        );
        assert_eq!(
            report.split_events,
            vec![
                SplitEvent {
                    interval: 1,
                    key: 999,
                    from: 1,
                    to: 4,
                },
                SplitEvent {
                    interval: 5,
                    key: 999,
                    from: 4,
                    to: 1,
                },
            ],
            "one split per burst, one unsplit per cool-down"
        );
        assert!(p.splits().is_empty());
    }

    #[test]
    fn report_counts_intervals() {
        let cfg = SimConfig {
            n_tasks: 4,
            intervals: 7,
        };
        let mut p = HashPartitioner::new(4);
        let mut src = zipf_source(500, 0.5, 0.0);
        let report = run_sim(&mut p, &mut src, &cfg);
        assert_eq!(report.theta_series.len(), 7);
    }
}
