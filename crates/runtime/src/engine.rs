//! Engine wiring: source, workers, collector, and the Fig. 5 controller.
//!
//! The data plane is batched end-to-end: the source routes and ships
//! tuples as [`Message::TupleBatch`]es from per-destination fan-out
//! accumulators (one channel send per destination per routed batch),
//! workers drain whole batches, and drained buffers recycle to the
//! source over a pool channel. Consistency: batches and migration
//! markers share each worker's FIFO channel, and the source only
//! acknowledges `Pause`/`Resume` between routed batches when its
//! accumulators are flushed, so every marker the controller sends after
//! an ack lands behind every batch the ack covered — the per-tuple
//! FIFO argument (see the crate docs) carries over verbatim with
//! "tuple" replaced by "batch".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Select, Sender};
use streambal_core::{IntervalStats, Key, Partitioner, RoutingView, TaskId};
use streambal_hashring::{FxHashMap, FxHashSet};
use streambal_metrics::{Counter, Histogram, RateMeter, TimeSeries};

use crate::message::{Message, SourceCtl, SourceEvent, WorkerEvent};
use crate::operator::{Collector, Operator};
use crate::router::SourceRouter;
use crate::tuple::Tuple;
use crate::worker::{run_worker, WorkerCtx};

/// Engine sizing and behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Initial downstream parallelism `N_D`.
    pub n_workers: usize,
    /// Pre-provisioned worker slots (≥ `n_workers`; extra slots allow
    /// scale-out).
    pub max_workers: usize,
    /// Source → worker channel depth in *tuples*; a full channel
    /// backpressures the source (the paper's "backpushing effect").
    /// Batched sends are weighted by their tuple count
    /// (`send_weighted`), so the bound stays exactly tuple-denominated
    /// at any batch size and any fan-out fill — control markers weigh 1,
    /// as they did when every message was one tuple.
    pub channel_capacity: usize,
    /// Worker → collector channel depth in *tuples* (PKG's max-pending
    /// analogue), weighted like [`EngineConfig::channel_capacity`].
    pub collector_capacity: usize,
    /// Tuples staged per routed batch on the source thread — the
    /// data-plane batch. Each routed batch fans out into per-destination
    /// buffers shipped as one [`Message::TupleBatch`] per destination
    /// touched. The source drains pause/resume/view updates every
    /// `max(batch_size, 256)` staged tuples, bounding how many tuples can
    /// be routed under a stale view. `1` degenerates to scalar
    /// [`Message::Tuple`] sends — a one-tuple batch buys no amortization
    /// and would only pay the buffer indirection — so the batched plane
    /// never regresses below the seed shape at any batch size.
    pub batch_size: usize,
    /// Ship every tuple as an individual [`Message::Tuple`] with
    /// per-tuple clock reads and counter increments — the seed data
    /// plane, kept so benchmarks can measure the batched plane against
    /// it.
    pub per_tuple: bool,
    /// Busy-work iterations per tuple — calibrates per-tuple CPU cost so
    /// the workers saturate, as the paper's experiments arrange.
    pub spin_work: u32,
    /// State window `w` in intervals.
    pub window: usize,
    /// Add one worker after this interval's statistics are collected
    /// (the Fig. 15 scale-out experiment).
    pub scale_out_at: Option<u64>,
}

impl EngineConfig {
    /// Whether the data plane ships scalar [`Message::Tuple`]s: the
    /// explicit seed shape, or `batch_size ≤ 1` (a one-tuple batch buys
    /// no amortization).
    fn scalar_plane(&self) -> bool {
        self.per_tuple || self.batch_size <= 1
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_workers: 4,
            max_workers: 4,
            channel_capacity: 1024,
            collector_capacity: 256,
            batch_size: 256,
            per_tuple: false,
            spin_work: 500,
            window: 5,
            scale_out_at: None,
        }
    }
}

/// Everything one engine run measured.
#[derive(Debug)]
pub struct EngineReport {
    /// Partitioner name.
    pub name: String,
    /// Total tuples processed by all workers.
    pub processed: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Mean throughput, tuples/second.
    pub mean_throughput: f64,
    /// Wall-clock-sampled throughput series (seconds, tuples/s).
    pub throughput: TimeSeries,
    /// Per-interval throughput series (interval, tuples/s).
    pub interval_throughput: TimeSeries,
    /// End-to-end tuple latency distribution (µs), merged over workers.
    pub latency_us: Histogram,
    /// Rebalances executed.
    pub rebalances: usize,
    /// Keys migrated across all rebalances.
    pub migrated_keys: u64,
    /// State bytes migrated across all rebalances.
    pub migrated_bytes: u64,
    /// Tuples processed per worker slot.
    pub per_worker_processed: Vec<u64>,
    /// All key state at shutdown (sorted by key) for validation.
    pub final_states: Vec<(Key, Bytes)>,
    /// The collector's result rows, if a collector ran.
    pub collector_result: Vec<(u64, u64)>,
}

/// A planned migration waiting its turn (one in flight at a time).
struct PlannedMigration {
    /// Moves grouped by source worker.
    by_source: FxHashMap<TaskId, Vec<(Key, TaskId)>>,
    affected: Vec<Key>,
    view: RoutingView,
}

/// An in-flight migration epoch.
struct ActiveMigration {
    epoch: u64,
    plan: PlannedMigration,
    awaiting_out: FxHashSet<TaskId>,
    collected: Vec<(Key, TaskId, Bytes)>,
    awaiting_install: FxHashSet<TaskId>,
}

/// Shared ingredients for spawning worker threads (initially and on
/// scale-out).
struct WorkerSpawner {
    event_tx: Sender<WorkerEvent>,
    col_tx: Option<Sender<Vec<Tuple>>>,
    pool_tx: Sender<Vec<Vec<Tuple>>>,
    spin_work: u32,
    window: u64,
    emit_batch: usize,
    counter: Arc<Counter>,
    epoch: Instant,
}

impl WorkerSpawner {
    fn spawn<'scope>(
        &self,
        s: &'scope std::thread::Scope<'scope, '_>,
        id: usize,
        rx: Receiver<Message>,
        op: Box<dyn Operator>,
        start_interval: u64,
    ) {
        let ctx = WorkerCtx {
            id: TaskId::from(id),
            rx,
            events: self.event_tx.clone(),
            collector: self.col_tx.clone(),
            op,
            spin_work: self.spin_work,
            window: self.window,
            processed_counter: Arc::clone(&self.counter),
            epoch: self.epoch,
            start_interval,
            pool: self.pool_tx.clone(),
            emit_batch: self.emit_batch,
        };
        s.spawn(move || run_worker(ctx));
    }
}

/// The engine: call [`Engine::run`].
pub struct Engine;

impl Engine {
    /// Runs a topology to completion and returns the report.
    ///
    /// * `partitioner` — the routing strategy under test (owned by the
    ///   controller, which runs on the calling thread).
    /// * `op_factory` — builds the keyed operator for each worker slot.
    /// * `feeder` — called with the interval index on the source thread;
    ///   returns that interval's tuples, or `None` to finish.
    /// * `collector` — optional downstream stage receiving operator
    ///   emissions (PKG merger, Q5 aggregation).
    pub fn run<F, OF>(
        config: EngineConfig,
        mut partitioner: Box<dyn Partitioner>,
        mut op_factory: OF,
        feeder: F,
        collector: Option<Box<dyn Collector>>,
    ) -> EngineReport
    where
        F: FnMut(u64) -> Option<Vec<Tuple>> + Send,
        OF: FnMut(TaskId) -> Box<dyn Operator>,
    {
        let t0 = Instant::now();
        let max_workers = config.max_workers.max(config.n_workers);
        assert!(config.n_workers >= 1, "need at least one worker");
        assert_eq!(
            partitioner.n_tasks(),
            config.n_workers,
            "partitioner and engine must agree on initial parallelism"
        );

        // Channels. Capacities are tuple-denominated: batch sends are
        // weighted by their tuple count, so the in-flight bound — the
        // backpushing effect — is exactly what the config documents at
        // any batch size and any fan-out fill.
        let mut worker_txs: Vec<Sender<Message>> = Vec::with_capacity(max_workers);
        let mut worker_rxs: Vec<Option<Receiver<Message>>> = Vec::with_capacity(max_workers);
        for _ in 0..max_workers {
            let (tx, rx) = bounded(config.channel_capacity);
            worker_txs.push(tx);
            worker_rxs.push(Some(rx));
        }
        let (event_tx, event_rx) = unbounded::<WorkerEvent>();
        let (ctl_tx, ctl_rx) = unbounded::<SourceCtl>();
        let (src_evt_tx, src_evt_rx) = unbounded::<SourceEvent>();
        let (col_tx, col_rx) = bounded::<Vec<Tuple>>(config.collector_capacity);
        // Batch-buffer free list: workers (and the collector) return
        // drained `Vec<Tuple>`s here — in groups, amortizing the channel
        // lock — and the source reuses them, so the steady-state data
        // plane allocates nothing per batch.
        let (pool_tx, pool_rx) = unbounded::<Vec<Vec<Tuple>>>();

        let counter = Arc::new(Counter::new());
        let stop = Arc::new(AtomicBool::new(false));
        let has_collector = collector.is_some();

        let name = partitioner.name();
        let initial_view = partitioner.routing_view();

        let mut report = EngineReport {
            name,
            processed: 0,
            wall: Duration::ZERO,
            mean_throughput: 0.0,
            throughput: TimeSeries::labelled("throughput"),
            interval_throughput: TimeSeries::labelled("interval throughput"),
            latency_us: Histogram::new(),
            rebalances: 0,
            migrated_keys: 0,
            migrated_bytes: 0,
            per_worker_processed: vec![0; max_workers],
            final_states: Vec::new(),
            collector_result: Vec::new(),
        };

        std::thread::scope(|s| {
            // --- workers -------------------------------------------------
            let spawner = WorkerSpawner {
                event_tx: event_tx.clone(),
                col_tx: has_collector.then(|| col_tx.clone()),
                pool_tx: pool_tx.clone(),
                spin_work: config.spin_work,
                window: config.window as u64,
                emit_batch: config.batch_size.max(1),
                counter: Arc::clone(&counter),
                epoch: t0,
            };
            for (d, slot) in worker_rxs.iter_mut().enumerate().take(config.n_workers) {
                let rx = slot.take().expect("slot free");
                spawner.spawn(s, d, rx, op_factory(TaskId::from(d)), 0);
            }

            // --- collector -----------------------------------------------
            let col_handle = collector.map(|mut c| {
                let col_pool_tx = pool_tx.clone();
                s.spawn(move || {
                    let mut returns: Vec<Vec<Tuple>> = Vec::new();
                    while let Ok(mut batch) = col_rx.recv() {
                        for t in &batch {
                            c.collect(t);
                        }
                        batch.clear();
                        // Recycle toward the source in groups; ignore
                        // failure (source already gone at teardown).
                        returns.push(batch);
                        if returns.len() >= 8 {
                            let _ = col_pool_tx.send(std::mem::take(&mut returns));
                        }
                    }
                    c.result()
                })
            });

            // --- throughput sampler ---------------------------------------
            let sampler = {
                let counter = Arc::clone(&counter);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let meter = RateMeter::new();
                    let mut series = TimeSeries::labelled("throughput");
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(50));
                        meter.sample(&counter);
                    }
                    for &(t, v) in &meter.series() {
                        series.push(t, v);
                    }
                    series
                })
            };

            // --- source ---------------------------------------------------
            let src_worker_txs = worker_txs.clone();
            let src_config = config;
            s.spawn(move || {
                source_loop(
                    feeder,
                    initial_view,
                    src_worker_txs,
                    ctl_rx,
                    src_evt_tx,
                    pool_rx,
                    t0,
                    src_config,
                )
            });

            // --- controller (this thread) ----------------------------------
            let mut active = config.n_workers;
            let mut pending: Option<ActiveMigration> = None;
            let mut queue: VecDeque<PlannedMigration> = VecDeque::new();
            let mut next_epoch = 0u64;
            // Per round: (merged stats, reports received, reports expected).
            // The expected count is pinned at issue time — scale-out must
            // not retroactively change how many workers a round waits for.
            let mut stats_acc: FxHashMap<u64, (IntervalStats, usize, usize)> = FxHashMap::default();
            let mut outstanding_stats = 0usize;
            let mut outstanding_resumes = 0usize;
            let mut source_finished = false;
            let mut draining = false;
            let mut drained = 0usize;
            let mut last_interval_mark = (Instant::now(), 0u64);

            let mut select = Select::new();
            let src_idx = select.recv(&src_evt_rx);
            let _evt_idx = select.recv(&event_rx);

            loop {
                let op_ready = select.select();
                match op_ready.index() {
                    i if i == src_idx => {
                        let Ok(ev) = op_ready.recv(&src_evt_rx) else {
                            continue;
                        };
                        match ev {
                            SourceEvent::IntervalDone { interval } => {
                                // Interval throughput point.
                                let now = Instant::now();
                                let count = counter.get();
                                let dt = now
                                    .duration_since(last_interval_mark.0)
                                    .as_secs_f64()
                                    .max(1e-9);
                                report.interval_throughput.push(
                                    interval as f64,
                                    (count - last_interval_mark.1) as f64 / dt,
                                );
                                last_interval_mark = (now, count);
                                // In-band stats round.
                                for tx in worker_txs.iter().take(active) {
                                    let _ = tx.send(Message::StatsRequest { interval });
                                }
                                stats_acc.insert(interval, (IntervalStats::new(), 0, active));
                                outstanding_stats += 1;
                            }
                            SourceEvent::PauseAck { epoch } => {
                                let m = pending.as_mut().expect("ack without pending migration");
                                debug_assert_eq!(m.epoch, epoch);
                                for (&w, moves) in &m.plan.by_source {
                                    m.awaiting_out.insert(w);
                                    let _ = worker_txs[w.index()].send(Message::MigrateOut {
                                        epoch,
                                        moves: moves.clone(),
                                    });
                                }
                                if m.awaiting_out.is_empty() {
                                    // Degenerate plan: resume immediately.
                                    let _ = ctl_tx.send(SourceCtl::Resume {
                                        epoch,
                                        view: m.plan.view.clone(),
                                    });
                                    outstanding_resumes += 1;
                                    pending = None;
                                }
                            }
                            SourceEvent::ResumeAck { .. } => {
                                outstanding_resumes -= 1;
                            }
                            SourceEvent::Finished => {
                                source_finished = true;
                            }
                        }
                    }
                    _ => {
                        let Ok(ev) = op_ready.recv(&event_rx) else {
                            continue;
                        };
                        match ev {
                            WorkerEvent::Stats {
                                interval, stats, ..
                            } => {
                                let entry = stats_acc
                                    .get_mut(&interval)
                                    .expect("stats for unknown round");
                                entry.0.merge(&stats);
                                entry.1 += 1;
                                if entry.1 == entry.2 {
                                    let (merged, _, _) = stats_acc.remove(&interval).unwrap();
                                    outstanding_stats -= 1;
                                    // Scale-out between rounds (Fig. 15).
                                    if config.scale_out_at == Some(interval) && active < max_workers
                                    {
                                        let live: Vec<Key> =
                                            merged.iter().map(|(k, _)| k).collect();
                                        let rx = worker_rxs[active].take().expect("slot");
                                        spawner.spawn(
                                            s,
                                            active,
                                            rx,
                                            op_factory(TaskId::from(active)),
                                            interval + 1,
                                        );
                                        partitioner.scale_out(&live);
                                        active += 1;
                                        let _ = ctl_tx.send(SourceCtl::UpdateView {
                                            view: partitioner.routing_view(),
                                        });
                                    }
                                    if let Some(out) = partitioner.end_interval(merged) {
                                        if !out.plan.is_empty() {
                                            report.rebalances += 1;
                                            report.migrated_keys += out.plan.keys_moved() as u64;
                                            report.migrated_bytes += out.plan.cost_bytes();
                                            let mut by_source: FxHashMap<
                                                TaskId,
                                                Vec<(Key, TaskId)>,
                                            > = FxHashMap::default();
                                            let mut affected =
                                                Vec::with_capacity(out.plan.keys_moved());
                                            for mv in out.plan.moves() {
                                                affected.push(mv.key);
                                                by_source
                                                    .entry(mv.from)
                                                    .or_default()
                                                    .push((mv.key, mv.to));
                                            }
                                            queue.push_back(PlannedMigration {
                                                by_source,
                                                affected,
                                                view: partitioner.routing_view(),
                                            });
                                        }
                                    }
                                }
                            }
                            WorkerEvent::StateOut {
                                worker,
                                epoch,
                                states,
                            } => {
                                let m = pending.as_mut().expect("state without migration");
                                debug_assert_eq!(m.epoch, epoch);
                                m.collected.extend(states);
                                m.awaiting_out.remove(&worker);
                                if m.awaiting_out.is_empty() {
                                    // Step 5b: forward to destinations.
                                    let mut by_dest: FxHashMap<TaskId, Vec<(Key, Bytes)>> =
                                        FxHashMap::default();
                                    for (k, to, blob) in m.collected.drain(..) {
                                        by_dest.entry(to).or_default().push((k, blob));
                                    }
                                    if by_dest.is_empty() {
                                        let _ = ctl_tx.send(SourceCtl::Resume {
                                            epoch,
                                            view: m.plan.view.clone(),
                                        });
                                        outstanding_resumes += 1;
                                        pending = None;
                                    } else {
                                        for (dest, states) in by_dest {
                                            m.awaiting_install.insert(dest);
                                            let _ = worker_txs[dest.index()]
                                                .send(Message::StateInstall { epoch, states });
                                        }
                                    }
                                }
                            }
                            WorkerEvent::InstallAck { worker, epoch } => {
                                let m = pending.as_mut().expect("ack without migration");
                                debug_assert_eq!(m.epoch, epoch);
                                m.awaiting_install.remove(&worker);
                                if m.awaiting_install.is_empty() {
                                    // Step 7: resume with F′.
                                    let _ = ctl_tx.send(SourceCtl::Resume {
                                        epoch,
                                        view: m.plan.view.clone(),
                                    });
                                    outstanding_resumes += 1;
                                    pending = None;
                                }
                            }
                            WorkerEvent::Drained {
                                worker,
                                final_states,
                                processed,
                                latency,
                            } => {
                                report.per_worker_processed[worker.index()] = processed;
                                report.processed += processed;
                                report.latency_us.merge(&latency);
                                report.final_states.extend(final_states);
                                drained += 1;
                                if drained == active {
                                    break;
                                }
                            }
                        }
                    }
                }

                // Start the next queued migration when idle.
                if pending.is_none() {
                    if let Some(plan) = queue.pop_front() {
                        next_epoch += 1;
                        let _ = ctl_tx.send(SourceCtl::Pause {
                            epoch: next_epoch,
                            affected: plan.affected.clone(),
                        });
                        pending = Some(ActiveMigration {
                            epoch: next_epoch,
                            plan,
                            awaiting_out: FxHashSet::default(),
                            collected: Vec::new(),
                            awaiting_install: FxHashSet::default(),
                        });
                    }
                }

                // Shutdown when fully quiesced. `outstanding_resumes`
                // guards the flush race: the source must confirm it has
                // re-enqueued all pause-buffered tuples before Shutdown
                // markers enter the worker channels behind them.
                if source_finished
                    && !draining
                    && pending.is_none()
                    && queue.is_empty()
                    && outstanding_stats == 0
                    && outstanding_resumes == 0
                {
                    draining = true;
                    for tx in worker_txs.iter().take(active) {
                        let _ = tx.send(Message::Shutdown);
                    }
                }
            }

            // All workers drained. Tear down the auxiliaries. The spawner
            // holds a collector-sender clone; it must drop before the
            // collector join, or the collector never observes closure.
            let _ = ctl_tx.send(SourceCtl::Shutdown);
            stop.store(true, Ordering::Relaxed);
            drop(spawner);
            drop(col_tx);
            report.throughput = sampler.join().expect("sampler");
            if let Some(h) = col_handle {
                report.collector_result = h.join().expect("collector");
            }
            report.final_states.sort_unstable_by_key(|&(k, _)| k);
        });

        report.wall = t0.elapsed();
        report.mean_throughput = report.processed as f64 / report.wall.as_secs_f64().max(1e-9);
        report
    }
}

/// The source-thread data plane: router, fan-out accumulators, pause
/// buffer, and the batch-buffer free list.
///
/// Every `batch_size` staged tuples are routed with one
/// [`SourceRouter::route_batch`] call, scattered into per-destination
/// buffers, and shipped as one [`Message::TupleBatch`] per destination
/// touched. Every routed batch is flushed whole before control messages
/// are drained (polling happens only between routed batches), so the
/// accumulators are empty at every poll point: a `PauseAck` never races
/// unsent data and the FIFO consistency argument (see crate docs)
/// carries over from the per-tuple protocol unchanged.
struct SourcePlane {
    router: SourceRouter,
    worker_txs: Vec<Sender<Message>>,
    events: Sender<SourceEvent>,
    /// In-flight migration: epoch and the paused key set.
    paused: Option<(u64, FxHashSet<Key>)>,
    /// Tuples of paused keys, held until `Resume`.
    buffer: Vec<Tuple>,
    /// Per-destination batch accumulators (indexed by worker slot).
    fan: Vec<Vec<Tuple>>,
    /// Destinations with a non-empty accumulator, in first-touch order.
    touched: Vec<usize>,
    /// Grouped drained-buffer returns from workers and the collector.
    pool: Receiver<Vec<Vec<Tuple>>>,
    /// Local free list fed from the pool.
    free: Vec<Vec<Tuple>>,
    /// Routing scratch, reused across batches.
    keys: Vec<Key>,
    dests: Vec<TaskId>,
    batch: usize,
    per_tuple: bool,
}

impl SourcePlane {
    /// A buffer from the free list (refilled from the pool channel), or a
    /// fresh one on a miss (only until enough buffers circulate).
    fn take_buf(&mut self) -> Vec<Tuple> {
        if let Some(buf) = self.free.pop() {
            return buf;
        }
        if let Ok(group) = self.pool.try_recv() {
            self.free.extend(group);
            if let Some(buf) = self.free.pop() {
                return buf;
            }
        }
        Vec::with_capacity(self.batch)
    }

    /// Drains every pending pool return into the free list and bounds
    /// it. Called at control-poll points: in the scalar shape `ship`
    /// never consumes buffers, yet collector-emission buffers still
    /// return here — without reclamation the unbounded pool channel
    /// would grow for the whole run. The bound also caps the free list
    /// in the batched shape (excess capacity is just dropped).
    fn reclaim(&mut self) {
        while let Ok(group) = self.pool.try_recv() {
            self.free.extend(group);
        }
        let cap = self.fan.len() * 4 + 8;
        self.free.truncate(cap);
    }

    /// Routes `staged` and ships it downstream: one channel send per
    /// destination touched (or per tuple in the seed shape). Drains
    /// `staged`, preserving per-destination tuple order.
    fn ship(&mut self, staged: &mut Vec<Tuple>) {
        if staged.is_empty() {
            return;
        }
        self.keys.clear();
        self.keys.extend(staged.iter().map(|t| t.key));
        self.router.route_batch(&self.keys, &mut self.dests);
        if self.per_tuple {
            for (t, d) in staged.drain(..).zip(&self.dests) {
                let _ = self.worker_txs[d.index()].send(Message::Tuple(t));
            }
            return;
        }
        for (t, d) in staged.drain(..).zip(&self.dests) {
            let slot = &mut self.fan[d.index()];
            if slot.is_empty() {
                self.touched.push(d.index());
            }
            slot.push(t);
        }
        for i in 0..self.touched.len() {
            let d = self.touched[i];
            let next = self.take_buf();
            let batch = std::mem::replace(&mut self.fan[d], next);
            let weight = batch.len();
            let _ = self.worker_txs[d].send_weighted(Message::TupleBatch(batch), weight);
        }
        self.touched.clear();
    }

    /// Handles one control message; returns false on Shutdown.
    fn handle_ctl(&mut self, msg: SourceCtl) -> bool {
        match msg {
            SourceCtl::Pause { epoch, affected } => {
                self.paused = Some((epoch, affected.into_iter().collect()));
                let _ = self.events.send(SourceEvent::PauseAck { epoch });
            }
            SourceCtl::Resume { epoch, view } => {
                self.router.update(view);
                // Flush the pause buffer under the new view, batched like
                // the main path (order within each key is the buffer's
                // arrival order, which scatter preserves per destination).
                // The flush goes through ship() in batch-sized chunks, so
                // the tuple-denominated channel bound holds even for a
                // buffer that grew far beyond one batch during the pause
                // (an unchunked flush would also recycle an oversized
                // buffer into the pool, pinning its capacity for the
                // rest of the run).
                let mut buffered = std::mem::take(&mut self.buffer);
                let mut staged: Vec<Tuple> = Vec::with_capacity(self.batch);
                for t in buffered.drain(..) {
                    staged.push(t);
                    if staged.len() >= self.batch {
                        self.ship(&mut staged);
                    }
                }
                self.ship(&mut staged);
                self.buffer = buffered; // drained; keeps its capacity
                self.paused = None;
                // Flush complete: only now may the controller shut workers
                // down (Message ordering across two senders is otherwise
                // unconstrained, and a Shutdown overtaking the flushed
                // tuples would drop them).
                let _ = self.events.send(SourceEvent::ResumeAck { epoch });
            }
            SourceCtl::UpdateView { view } => self.router.update(view),
            SourceCtl::Shutdown => return false,
        }
        true
    }
}

/// The source thread: feeds tuples, honours pause/resume, reports
/// interval boundaries. Staging, routing, and shipping all happen per
/// batch of `config.batch_size` tuples; emission timestamps are taken
/// once per staged batch (per tuple in the seed `per_tuple` shape).
#[allow(clippy::too_many_arguments)]
fn source_loop<F>(
    mut feeder: F,
    view: RoutingView,
    worker_txs: Vec<Sender<Message>>,
    ctl: Receiver<SourceCtl>,
    events: Sender<SourceEvent>,
    pool: Receiver<Vec<Vec<Tuple>>>,
    epoch: Instant,
    config: EngineConfig,
) where
    F: FnMut(u64) -> Option<Vec<Tuple>> + Send,
{
    let batch = config.batch_size.max(1);
    // Control-poll granularity: at least every CTL_POLL staged tuples,
    // decoupled from the batch size so tiny batches do not pay a control
    // channel probe per send. 256 matches the pre-batching loop's bound
    // on tuples routed under a stale view.
    const CTL_POLL: usize = 256;
    let ctl_every = batch.max(CTL_POLL);
    // Batch size 1 degenerates to the scalar plane: same protocol
    // positions, no pooled-buffer indirection for zero amortization.
    let per_tuple = config.scalar_plane();
    // Scalar sends have no fan-out to size, so staging (which only sets
    // stamping and poll granularity there) stays at the poll bound.
    let stage_size = if per_tuple { ctl_every } else { batch };
    let n_slots = worker_txs.len();
    let mut plane = SourcePlane {
        router: SourceRouter::from_view(view),
        worker_txs,
        events,
        paused: None,
        buffer: Vec::new(),
        fan: (0..n_slots).map(|_| Vec::with_capacity(batch)).collect(),
        touched: Vec::with_capacity(n_slots),
        pool,
        free: Vec::new(),
        keys: Vec::with_capacity(batch),
        dests: Vec::with_capacity(batch),
        batch,
        per_tuple,
    };
    // Staging scratch, reused across batches to stay allocation-free.
    let mut staged: Vec<Tuple> = Vec::with_capacity(stage_size);
    let mut since_ctl = usize::MAX; // poll before the first batch

    let mut interval = 0u64;
    'feed: loop {
        let Some(tuples) = feeder(interval) else {
            break 'feed;
        };
        let mut pending = tuples.into_iter();
        loop {
            if since_ctl >= ctl_every {
                since_ctl = 0;
                plane.reclaim();
                while let Ok(msg) = ctl.try_recv() {
                    if !plane.handle_ctl(msg) {
                        return;
                    }
                }
            }
            // Stage the next batch, holding back keys paused for an
            // in-flight migration. One clock read stamps the whole batch;
            // the scalar shape stamps each tuple, as the seed always did.
            // The loop is bounded by tuples *consumed*, not staged: under
            // a pause that covers the hot keys, nearly everything goes to
            // the pause buffer, and a staged-only bound would starve the
            // control poll (and the Resume that empties that buffer) for
            // the rest of the interval.
            staged.clear();
            let mut consumed = 0usize;
            let batch_us = if per_tuple {
                0
            } else {
                epoch.elapsed().as_micros() as u64
            };
            while staged.len() < stage_size && consumed < stage_size {
                let Some(mut t) = pending.next() else {
                    break;
                };
                consumed += 1;
                t.emitted_us = if per_tuple {
                    epoch.elapsed().as_micros() as u64
                } else {
                    batch_us
                };
                if let Some((_, affected)) = &plane.paused {
                    if affected.contains(&t.key) {
                        plane.buffer.push(t);
                        continue;
                    }
                }
                staged.push(t);
            }
            if consumed == 0 && pending.len() == 0 {
                break;
            }
            since_ctl += consumed;
            plane.ship(&mut staged);
        }
        since_ctl = usize::MAX; // interval boundary: poll immediately
        while let Ok(msg) = ctl.try_recv() {
            if !plane.handle_ctl(msg) {
                return;
            }
        }
        let _ = plane.events.send(SourceEvent::IntervalDone { interval });
        interval += 1;
    }
    let _ = plane.events.send(SourceEvent::Finished);

    // Stay responsive to control traffic (in-flight migrations) until the
    // controller says shutdown.
    while let Ok(msg) = ctl.recv() {
        if !plane.handle_ctl(msg) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::WordCountOp;
    use streambal_baselines::CoreBalancer;
    use streambal_baselines::HashPartitioner;
    use streambal_core::{BalanceParams, RebalanceStrategy};
    use streambal_workloads::FluctuatingWorkload;

    /// Reference word counts for a tuple sequence.
    fn reference_counts(tuples: &[Vec<Key>]) -> FxHashMap<Key, u64> {
        let mut m = FxHashMap::default();
        for iv in tuples {
            for &k in iv {
                *m.entry(k).or_insert(0) += 1;
            }
        }
        m
    }

    fn decode_counts(states: &[(Key, Bytes)]) -> FxHashMap<Key, u64> {
        let mut m = FxHashMap::default();
        for (k, blob) in states {
            let total: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
            *m.entry(*k).or_insert(0) += total;
        }
        m
    }

    fn small_config() -> EngineConfig {
        EngineConfig {
            n_workers: 3,
            max_workers: 3,
            channel_capacity: 256,
            collector_capacity: 64,
            batch_size: 32, // small batches: more batch boundaries under test
            per_tuple: false,
            spin_work: 10,
            window: 100, // keep everything: exact count validation
            scale_out_at: None,
        }
    }

    #[test]
    fn word_count_exact_under_hash() {
        let mut w = FluctuatingWorkload::new(200, 0.9, 3_000, 0.0, 11);
        let intervals: Vec<Vec<Key>> = (0..3).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let report = Engine::run(
            small_config(),
            Box::new(HashPartitioner::new(3)),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert_eq!(
            report.processed,
            intervals.iter().map(|v| v.len() as u64).sum()
        );
        assert_eq!(decode_counts(&report.final_states), expect);
        assert_eq!(report.rebalances, 0);
    }

    #[test]
    fn word_count_exact_under_mixed_with_migrations() {
        // Skewed + fluctuating: Mixed must fire migrations, and the final
        // counts must still be exact (no tuple lost or double-counted, no
        // state lost in flight).
        let mut w = FluctuatingWorkload::new(300, 1.0, 5_000, 0.8, 23);
        let mut intervals: Vec<Vec<Key>> = Vec::new();
        for _ in 0..5 {
            intervals.push(w.tuples());
            w.advance(3, |k| TaskId::from((k.raw() % 3) as usize));
        }
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let report = Engine::run(
            small_config(),
            Box::new(CoreBalancer::new(
                3,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.05,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert!(report.rebalances > 0, "skew must trigger migration");
        assert!(report.migrated_keys > 0);
        assert_eq!(decode_counts(&report.final_states), expect, "exactly-once");
    }

    #[test]
    fn latency_and_throughput_recorded() {
        let report = Engine::run(
            small_config(),
            Box::new(HashPartitioner::new(3)),
            |_| Box::new(WordCountOp::new()),
            |iv| (iv < 2).then(|| (0..2000u64).map(|i| Tuple::keyed(Key(i % 50))).collect()),
            None,
        );
        assert_eq!(report.processed, 4000);
        assert!(report.latency_us.count() == 4000);
        assert!(report.latency_us.mean() > 0.0);
        assert!(report.mean_throughput > 0.0);
        assert_eq!(report.interval_throughput.len(), 2);
    }

    #[test]
    fn pkg_partials_merge_to_exact_counts() {
        use crate::operator::SumCollector;
        use streambal_baselines::PkgPartitioner;
        let mut w = FluctuatingWorkload::new(100, 0.9, 4_000, 0.0, 7);
        let intervals: Vec<Vec<Key>> = (0..3)
            .map(|_| {
                let t = w.tuples();
                w.advance(3, |k| TaskId::from((k.raw() % 3) as usize));
                t
            })
            .collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let report = Engine::run(
            small_config(),
            Box::new(PkgPartitioner::new(3)),
            |_| Box::new(WordCountOp::with_partial_emission(16)),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            Some(Box::new(SumCollector::new())),
        );
        // The merged partial counts must equal the reference exactly.
        let merged: FxHashMap<Key, u64> = report
            .collector_result
            .iter()
            .map(|&(k, v)| (Key(k), v))
            .collect();
        assert_eq!(merged, expect, "partial/merge must reconstruct counts");
    }

    #[test]
    fn scale_out_adds_worker_and_keeps_counts_exact() {
        let mut w = FluctuatingWorkload::new(200, 0.9, 4_000, 0.0, 31);
        let intervals: Vec<Vec<Key>> = (0..6).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let config = EngineConfig {
            n_workers: 2,
            max_workers: 3,
            scale_out_at: Some(2),
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(CoreBalancer::new(
                2,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.1,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        // The third worker processed something after joining.
        assert!(
            report.per_worker_processed[2] > 0,
            "new worker got traffic: {:?}",
            report.per_worker_processed
        );
        assert_eq!(decode_counts(&report.final_states), expect);
    }

    /// The seed per-tuple shape and batch sizes 1 and 256 must all be
    /// observationally identical: exact counts, exact processed totals,
    /// exact latency sample counts.
    #[test]
    fn per_tuple_and_batched_shapes_agree() {
        let mut w = FluctuatingWorkload::new(200, 0.9, 3_000, 0.0, 19);
        let intervals: Vec<Vec<Key>> = (0..3).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
        for (per_tuple, batch_size) in [(true, 256), (false, 1), (false, 256)] {
            let config = EngineConfig {
                per_tuple,
                batch_size,
                ..small_config()
            };
            let feed = intervals.clone();
            let report = Engine::run(
                config,
                Box::new(HashPartitioner::new(3)),
                |_| Box::new(WordCountOp::new()),
                move |iv| {
                    feed.get(iv as usize)
                        .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
                },
                None,
            );
            let label = if per_tuple {
                "per-tuple".to_string()
            } else {
                format!("batch={batch_size}")
            };
            assert_eq!(report.processed, total, "{label}");
            assert_eq!(report.latency_us.count(), total, "{label}");
            assert_eq!(decode_counts(&report.final_states), expect, "{label}");
        }
    }

    /// Migration consistency under batching with the channels squeezed to
    /// almost nothing: batch flushes must never reorder around
    /// `MigrateOut`/`Shutdown` markers even when every send blocks.
    #[test]
    fn tiny_channels_with_migrations_stay_exact() {
        let mut w = FluctuatingWorkload::new(300, 1.0, 4_000, 0.8, 29);
        let mut intervals: Vec<Vec<Key>> = Vec::new();
        for _ in 0..4 {
            intervals.push(w.tuples());
            w.advance(3, |k| TaskId::from((k.raw() % 3) as usize));
        }
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let config = EngineConfig {
            channel_capacity: 4,
            collector_capacity: 2,
            batch_size: 16,
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(CoreBalancer::new(
                3,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.05,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert!(report.rebalances > 0, "skew must trigger migration");
        assert_eq!(decode_counts(&report.final_states), expect, "exactly-once");
    }

    #[test]
    fn backpressure_with_tiny_channels_terminates() {
        let config = EngineConfig {
            channel_capacity: 4,
            collector_capacity: 2,
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(HashPartitioner::new(3)),
            |_| Box::new(WordCountOp::new()),
            |iv| (iv < 2).then(|| (0..500u64).map(|i| Tuple::keyed(Key(i % 7))).collect()),
            None,
        );
        assert_eq!(report.processed, 1000);
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn mismatched_parallelism_panics() {
        let _ = Engine::run(
            small_config(), // 3 workers
            Box::new(HashPartitioner::new(2)),
            |_| Box::new(WordCountOp::new()),
            |_| None,
            None,
        );
    }
}
