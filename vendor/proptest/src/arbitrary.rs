//! `any::<T>()` — full-domain strategies for primitive types.

use rand::rngs::StdRng;
use rand::RngCore;

use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn any_u8_covers_values() {
        let mut rng = case_rng(2);
        let mut seen = [false; 256];
        for _ in 0..10_000 {
            seen[any::<u8>().generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 200);
    }
}
