//! # streambal-runtime
//!
//! A thread-based mini stream-processing engine — the workspace's
//! substitute for the Apache Storm deployment the paper evaluates on.
//!
//! ## Shape
//!
//! ```text
//!  Source thread ──(bounded channels: backpressure)──▶ Worker threads (keyed, stateful)
//!       ▲   │                                              │        │
//!       │   └───────────── interval markers ───────────────┼──▶ Collector thread
//!       │                                                  │     (merge / aggregate)
//!  Controller (Fig. 5 protocol) ◀───── events ─────────────┘
//! ```
//!
//! * The **source** pulls tuples from a feeder closure, stamps them, and
//!   routes them with a local [`SourceRouter`] snapshot — the "tuples
//!   router" of Fig. 5.
//! * **Workers** are downstream task instances: one thread per instance,
//!   one bounded input channel each (full channel = backpressure, the
//!   "backpushing effect" of the paper's Fig. 1). They run an
//!   [`Operator`], keep windowed per-key state, and account per-key
//!   statistics.
//! * The **controller** implements the paper's rebalance workflow
//!   (Fig. 5): ① collect per-interval statistics; ② run the partitioner's
//!   rebalance; ③④ broadcast the plan and pause affected keys at the
//!   source (which buffers them); ⑤ migrate key state between workers via
//!   in-band messages; ⑥ collect acks; ⑦ resume with the new routing
//!   table. Tuples of unaffected keys keep flowing throughout.
//!
//! In-band delivery over FIFO channels gives exactly-once state movement:
//! `MigrateOut` markers are enqueued only after the source acknowledged
//! the pause, so they land *behind* every pre-pause tuple; `Resume` is
//! sent only after the destination acknowledged installation, so
//! post-resume tuples land behind the installed state.
//!
//! CPU saturation is emulated by `spin_work` busy-iterations per tuple,
//! mirroring the paper's "controlling the latency on tuple processing to
//! force the system to a saturation point".

pub mod codec;
pub mod engine;
pub mod message;
pub mod operator;
pub mod router;
pub mod topk;
pub mod tuple;
pub mod worker;

pub use codec::{decode_plan, decode_view, encode_plan, encode_view, CodecError};
pub use engine::{Engine, EngineConfig, EngineReport};
pub use message::{Message, SourceCtl, SourceEvent, WorkerEvent};
pub use operator::{
    CoJoinOp, Collector, CountingCollector, Operator, SumCollector, WindowedSelfJoinOp, WordCountOp,
};
pub use router::SourceRouter;
pub use topk::TopKOp;
pub use tuple::{Tuple, TAG_DEFAULT, TAG_LEFT, TAG_PARTIAL, TAG_RIGHT};
