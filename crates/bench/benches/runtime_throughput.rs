//! Criterion bench: end-to-end engine throughput on a small skewed
//! word-count topology, hash vs Mixed routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use streambal_bench::figs_runtime::{run_wordcount, zipf_intervals, RtParams, RtStrategy};

fn bench_engine(c: &mut Criterion) {
    let rt = RtParams {
        nd: 3,
        tuples: 5_000,
        intervals: 3,
        spin: 200,
        window: 5,
        batch: 256,
    };
    let intervals = zipf_intervals(&rt, 1_000, 0.95, 0.5, 77);
    let mut group = c.benchmark_group("engine_wordcount");
    group.sample_size(10);
    for strategy in [RtStrategy::Storm, RtStrategy::Mixed, RtStrategy::Ideal] {
        group.bench_with_input(
            BenchmarkId::new(strategy.name(), "15k_tuples"),
            &intervals,
            |b, intervals| b.iter(|| run_wordcount(&rt, strategy, 0.1, intervals, None)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
