// Fixture: per-event trace recording in data-plane code.

fn drain(recorder: &mut ThreadRecorder, batch: &[Tuple]) {
    for t in batch {
        recorder.record(t.key);
    }
}

fn drain_field(ctx: &mut WorkerCtx, t: &Tuple) {
    ctx.tracer.record(t.key);
}
