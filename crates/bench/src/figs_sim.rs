//! Simulator-based figures: 7, 8, 9, 10, 12, 17, 18, 19, 20, 21.
//!
//! Every figure returns a [`Figure`], rendering to both the fixed-width
//! console tables and `bench_results/figNN.json`.

use streambal_baselines::HashPartitioner;
use streambal_core::{rebalance, Partitioner, RebalanceInput, RebalanceStrategy};
use streambal_sim::skewness_samples;

use crate::figure::{Figure, Table};
use crate::{run_core_sim, run_readj_best, Defaults, Scale, READJ_SIGMAS};

/// Fig. 7 — cumulative distribution of workload skewness under pure
/// hashing, varying (a) the number of task instances and (b) the key
/// domain size.
pub fn fig07(scale: Scale) -> Figure {
    let d = Defaults::at(scale);
    // Each run is one random draw of key-popularity → ring placement;
    // pool per-task samples over several seeds so the CDF reflects the
    // distribution, not a single layout.
    let seeds: Vec<u64> = scale.pick((1..=12).collect(), (1..=24).collect());
    let pooled = |k: usize, nd: usize| -> Vec<f64> {
        let mut all = Vec::new();
        for &seed in &seeds {
            let mut dd = d;
            dd.k = k;
            dd.seed = seed;
            let mut src = dd.source();
            let mut p = HashPartitioner::new(nd);
            let mut route = |key| p.route(key);
            all.extend(skewness_samples(
                &mut route,
                &mut src,
                nd,
                d.intervals.min(5),
            ));
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        all
    };
    let percentiles = [0.2, 0.4, 0.6, 0.8, 1.0];
    let at = |samples: &[f64]| -> Vec<f64> {
        percentiles
            .iter()
            .map(|&q| {
                let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
                samples[idx - 1]
            })
            .collect()
    };
    let pct_cols: Vec<String> = percentiles
        .iter()
        .map(|p| format!("{:.0}%", p * 100.0))
        .collect();

    let mut fig = Figure::new("fig07");
    let mut a = Table::new(
        "Fig 7(a): skewness CDF under hash, varying ND (z=0.85)",
        "ND \\ percentile",
        pct_cols.clone(),
        8,
        3,
    );
    for nd in [5usize, 10, 20, 40] {
        a.row(format!("ND={nd}"), &at(&pooled(d.k, nd)));
    }
    fig.push(a);

    let mut b = Table::new(
        "Fig 7(b): skewness CDF under hash, varying K (ND=10)",
        "K \\ percentile",
        pct_cols,
        8,
        3,
    );
    let ks = match scale {
        Scale::Quick => vec![5_000usize, 10_000, 100_000],
        Scale::Full => vec![5_000, 10_000, 100_000, 1_000_000],
    };
    for k in ks {
        b.row(format!("K={k}"), &at(&pooled(k, d.nd)));
    }
    fig.push(b);
    fig
}

/// Fig. 8 — plan-generation time and migration cost vs `N_D`
/// (Mixed vs MinTable, `w ∈ {1, 5}`).
pub fn fig08(scale: Scale) -> Figure {
    let base = Defaults::at(scale);
    let nds: Vec<usize> = scale.pick(vec![5, 10, 20, 30, 40], vec![5, 10, 15, 20, 25, 30, 35, 40]);
    let cols: Vec<String> = nds.iter().map(|n| n.to_string()).collect();
    let mut gen: Vec<Vec<f64>> = vec![vec![], vec![]];
    let mut mig: Vec<Vec<f64>> = vec![vec![], vec![], vec![], vec![]];
    for &nd in &nds {
        for (si, strategy) in [RebalanceStrategy::Mixed, RebalanceStrategy::MinTable]
            .iter()
            .enumerate()
        {
            for (wi, w) in [1usize, 5].iter().enumerate() {
                let mut d = base;
                d.nd = nd;
                d.window = *w;
                let r = run_core_sim(&d, *strategy);
                if *w == 1 {
                    gen[si].push(r.gen_time_ms.mean());
                }
                mig[si * 2 + wi].push(r.mig_fraction.mean() * 100.0);
            }
        }
    }
    let mut fig = Figure::new("fig08");
    let mut a = Table::new(
        "Fig 8(a): avg plan-generation time (ms) vs ND",
        "strategy \\ ND",
        cols.clone(),
        8,
        2,
    );
    a.row("Mixed", &gen[0]);
    a.row("MinTable", &gen[1]);
    fig.push(a);
    let mut b = Table::new(
        "Fig 8(b): migration cost (%) vs ND",
        "strategy \\ ND",
        cols,
        8,
        2,
    );
    for (label, series) in [
        ("Mixed w=1", &mig[0]),
        ("Mixed w=5", &mig[1]),
        ("MinTable w=1", &mig[2]),
        ("MinTable w=5", &mig[3]),
    ] {
        b.row(label, series);
    }
    fig.push(b);
    fig
}

/// Fig. 9 — generation time / migration cost vs `θmax`.
pub fn fig09(scale: Scale) -> Figure {
    let base = Defaults::at(scale);
    let thetas = [0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.2, 0.3, 0.4, 0.5];
    let cols: Vec<String> = thetas.iter().map(|t| format!("{t}")).collect();
    let mut gen = [vec![], vec![]];
    let mut mig: Vec<Vec<f64>> = vec![vec![], vec![], vec![], vec![]];
    for &theta in &thetas {
        for (si, strategy) in [RebalanceStrategy::Mixed, RebalanceStrategy::MinTable]
            .iter()
            .enumerate()
        {
            for (wi, w) in [1usize, 5].iter().enumerate() {
                let mut d = base;
                d.theta_max = theta;
                d.window = *w;
                let r = run_core_sim(&d, *strategy);
                if *w == 1 {
                    gen[si].push(r.gen_time_ms.mean());
                }
                mig[si * 2 + wi].push(r.mig_fraction.mean() * 100.0);
            }
        }
    }
    let mut fig = Figure::new("fig09");
    let mut a = Table::new(
        "Fig 9(a): avg plan-generation time (ms) vs θmax",
        "strategy \\ θmax",
        cols.clone(),
        8,
        2,
    );
    a.row("Mixed", &gen[0]);
    a.row("MinTable", &gen[1]);
    fig.push(a);
    let mut b = Table::new(
        "Fig 9(b): migration cost (%) vs θmax",
        "strategy \\ θmax",
        cols,
        8,
        2,
    );
    for (label, series) in [
        ("Mixed w=1", &mig[0]),
        ("Mixed w=5", &mig[1]),
        ("MinTable w=1", &mig[2]),
        ("MinTable w=5", &mig[3]),
    ] {
        b.row(label, series);
    }
    fig.push(b);
    fig
}

/// Fig. 10 — generation time / migration cost vs key-domain size `K`.
pub fn fig10(scale: Scale) -> Figure {
    let base = Defaults::at(scale);
    let ks: Vec<usize> = scale.pick(
        vec![5_000, 10_000, 100_000],
        vec![5_000, 10_000, 100_000, 1_000_000],
    );
    let cols: Vec<String> = ks.iter().map(|k| format!("{k}")).collect();
    let mut gen = [vec![], vec![]];
    let mut mig: Vec<Vec<f64>> = vec![vec![], vec![], vec![], vec![]];
    for &k in &ks {
        for (si, strategy) in [RebalanceStrategy::Mixed, RebalanceStrategy::MinTable]
            .iter()
            .enumerate()
        {
            for (wi, w) in [1usize, 5].iter().enumerate() {
                let mut d = base;
                d.k = k;
                d.window = *w;
                let r = run_core_sim(&d, *strategy);
                if *w == 1 {
                    gen[si].push(r.gen_time_ms.mean());
                }
                mig[si * 2 + wi].push(r.mig_fraction.mean() * 100.0);
            }
        }
    }
    let mut fig = Figure::new("fig10");
    let mut a = Table::new(
        "Fig 10(a): avg plan-generation time (ms) vs K",
        "strategy \\ K",
        cols.clone(),
        9,
        2,
    );
    a.row("Mixed", &gen[0]);
    a.row("MinTable", &gen[1]);
    fig.push(a);
    let mut b = Table::new(
        "Fig 10(b): migration cost (%) vs K",
        "strategy \\ K",
        cols,
        9,
        2,
    );
    for (label, series) in [
        ("Mixed w=1", &mig[0]),
        ("Mixed w=5", &mig[1]),
        ("MinTable w=1", &mig[2]),
        ("MinTable w=5", &mig[3]),
    ] {
        b.row(label, series);
    }
    fig.push(b);
    fig
}

/// Fig. 12 — generation time / migration cost vs fluctuation rate `f`,
/// comparing Mixed, MinTable, Readj (best σ) and MixedBF.
pub fn fig12(scale: Scale) -> Figure {
    let mut base = Defaults::at(scale);
    // BF re-runs the pipeline per candidate n; keep the domain small like
    // the paper's Fig. 12 setting.
    base.k = scale.pick(2_000, 10_000);
    base.tuples = scale.pick(50_000, 200_000);
    base.table_max = scale.pick(300, 1_000);
    let fs = [0.1, 0.3, 0.5, 0.7, 0.9];
    let cols: Vec<String> = fs.iter().map(|f| format!("{f}")).collect();
    let mut gen: Vec<Vec<f64>> = vec![vec![]; 4];
    let mut mig: Vec<Vec<f64>> = vec![vec![]; 4];
    for &f in &fs {
        let mut d = base;
        d.f = f;
        for (i, strategy) in [
            RebalanceStrategy::Mixed,
            RebalanceStrategy::MinTable,
            RebalanceStrategy::MixedBF,
        ]
        .iter()
        .enumerate()
        {
            let r = run_core_sim(&d, *strategy);
            gen[i].push(r.gen_time_ms.mean());
            mig[i].push(r.mig_fraction.mean() * 100.0);
        }
        let r = run_readj_best(&d, &READJ_SIGMAS);
        gen[3].push(r.gen_time_ms.mean());
        mig[3].push(r.mig_fraction.mean() * 100.0);
    }
    let mut fig = Figure::new("fig12");
    let mut a = Table::new(
        "Fig 12(a): avg plan-generation time (ms) vs f",
        "strategy \\ f",
        cols.clone(),
        9,
        2,
    );
    let mut b = Table::new(
        "Fig 12(b): migration cost (%) vs f",
        "strategy \\ f",
        cols,
        9,
        2,
    );
    for (i, label) in ["Mixed", "MinTable", "MixedBF", "Readj"].iter().enumerate() {
        a.row(*label, &gen[i]);
        b.row(*label, &mig[i]);
    }
    fig.push(a);
    fig.push(b);
    fig
}

/// Fig. 17 (appendix) — Mixed's migration cost vs the routing-table bound
/// `N_A = 2^i`, for several `θmax`.
pub fn fig17(scale: Scale) -> Figure {
    let base = Defaults::at(scale);
    let is: Vec<u32> = scale.pick(vec![1, 3, 5, 7, 9, 11, 13], vec![1, 3, 5, 7, 9, 11, 13]);
    let thetas = [0.02, 0.08, 0.15, 0.3];
    let cols: Vec<String> = is.iter().map(|i| format!("2^{i}")).collect();
    let mut fig = Figure::new("fig17");
    let mut t = Table::new(
        "Fig 17: Mixed migration cost (%) vs table bound NA",
        "θmax \\ NA",
        cols,
        8,
        2,
    );
    for &theta in &thetas {
        let mut vals = Vec::new();
        for &i in &is {
            let mut d = base;
            d.theta_max = theta;
            d.table_max = 1usize << i;
            let r = run_core_sim(&d, RebalanceStrategy::Mixed);
            vals.push(r.mig_fraction.mean() * 100.0);
        }
        t.row(format!("θmax={theta}"), &vals);
    }
    fig.push(t);
    fig
}

/// Fig. 18 (appendix) — MinMig's routing-table growth over successive
/// adjustments, converging toward `(N_D − 1)/N_D · K`.
pub fn fig18(scale: Scale) -> Figure {
    let mut d = Defaults::at(scale);
    d.k = 10_000; // the paper sets K = 10^4 here
    d.tuples = scale.pick(100_000, 500_000);
    d.intervals = scale.pick(64, 256);
    let thetas = [0.02, 0.08, 0.15, 0.3];
    let marks: Vec<usize> = (0..)
        .map(|i| 1usize << i)
        .take_while(|&m| m <= d.intervals)
        .collect();
    let mut fig = Figure::new("fig18");
    let mut t = Table::new(
        "Fig 18: MinMig routing-table size vs #adjustments (K=10^4)",
        "θmax \\ #adj",
        marks.iter().map(|m| m.to_string()).collect(),
        8,
        0,
    );
    for &theta in &thetas {
        let mut dd = d;
        dd.theta_max = theta;
        dd.table_max = usize::MAX; // MinMig ignores the bound by design
        let r = run_core_sim(&dd, RebalanceStrategy::MinMig);
        let table = &r.table_series;
        let mut vals = Vec::new();
        for &m in &marks {
            // Table size at the m-th adjustment (or the last one before).
            let v = table
                .points()
                .iter()
                .take(m)
                .next_back()
                .map_or(0.0, |&(_, v)| v);
            vals.push(v);
        }
        t.row(format!("θmax={theta}"), &vals);
    }
    t.note(format!(
        "(convergence bound (ND-1)/ND·K = {:.0})",
        (d.nd - 1) as f64 / d.nd as f64 * d.k as f64
    ));
    fig.push(t);
    fig
}

/// Fig. 19 (appendix) — migration cost vs the window size `w`.
pub fn fig19(scale: Scale) -> Figure {
    let base = Defaults::at(scale);
    let ws = [1usize, 3, 5, 7, 9, 11, 13, 15];
    let mut fig = Figure::new("fig19");
    let mut t = Table::new(
        "Fig 19: migration cost (%) vs window size w",
        "strategy \\ w",
        ws.iter().map(|w| w.to_string()).collect(),
        8,
        2,
    );
    for strategy in [RebalanceStrategy::Mixed, RebalanceStrategy::MinTable] {
        let mut vals = Vec::new();
        for &w in &ws {
            let mut d = base;
            d.window = w;
            let r = run_core_sim(&d, strategy);
            vals.push(r.mig_fraction.mean() * 100.0);
        }
        t.row(strategy.name(), &vals);
    }
    fig.push(t);
    fig
}

/// Figs. 20 & 21 (appendix) — MinMig's routing-table size and migration
/// cost vs the weight-scaling factor `β`.
pub fn fig20_21(scale: Scale) -> Figure {
    let base = Defaults::at(scale);
    let betas = [1.0, 1.2, 1.4, 1.5, 1.6, 1.8, 2.0];
    let thetas = [0.02, 0.08, 0.15, 0.3];
    let cols: Vec<String> = betas.iter().map(|b| format!("{b}")).collect();
    let mut table_rows = Vec::new();
    let mut mig_rows = Vec::new();
    for &theta in &thetas {
        let mut tvals = Vec::new();
        let mut mvals = Vec::new();
        for &beta in &betas {
            let mut d = base;
            d.theta_max = theta;
            d.beta = beta;
            d.table_max = usize::MAX;
            let r = run_core_sim(&d, RebalanceStrategy::MinMig);
            tvals.push(r.table_series.points().last().map_or(0.0, |&(_, v)| v));
            mvals.push(r.mig_fraction.mean() * 100.0);
        }
        table_rows.push((theta, tvals));
        mig_rows.push((theta, mvals));
    }
    let mut fig = Figure::new("fig20_21");
    let mut a = Table::new(
        "Fig 20: MinMig routing-table size vs β",
        "θmax \\ β",
        cols.clone(),
        8,
        0,
    );
    for (theta, vals) in &table_rows {
        a.row(format!("θmax={theta}"), vals);
    }
    fig.push(a);
    let mut b = Table::new(
        "Fig 21: MinMig migration cost (%) vs β",
        "θmax \\ β",
        cols,
        8,
        2,
    );
    for (theta, vals) in &mig_rows {
        b.row(format!("θmax={theta}"), vals);
    }
    fig.push(b);
    fig
}

/// Sanity helper for tests: a single Mixed rebalance over a fixed skewed
/// input must be reproducible.
pub fn smoke_rebalance() -> f64 {
    let d = Defaults::at(Scale::Quick);
    let mut src = d.source();
    let mut hash = HashPartitioner::new(d.nd);
    let mut route = |k| hash.route(k);
    let stats = streambal_sim::source::IntervalSource::next_interval(&mut src, d.nd, &mut route);
    let records: Vec<streambal_core::KeyRecord> = stats
        .iter()
        .map(|(k, s)| streambal_core::KeyRecord {
            key: k,
            cost: s.cost,
            mem: s.mem,
            current: route(k),
            hash_dest: route(k),
        })
        .collect();
    let input = RebalanceInput {
        n_tasks: d.nd,
        records,
    };
    rebalance(&input, RebalanceStrategy::Mixed, &d.params()).achieved_theta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07_emits_all_rows() {
        let fig = fig07(Scale::Quick);
        let out = fig.to_text();
        for nd in [5, 10, 20, 40] {
            assert!(out.contains(&format!("ND={nd}")), "missing ND={nd}\n{out}");
        }
        assert!(out.contains("K=5000"));
        // And the JSON carries the same rows.
        let json = fig.to_json(Scale::Quick).to_pretty();
        assert!(json.contains("\"label\": \"ND=40\""));
        assert!(json.contains("\"figure\": \"fig07\""));
    }

    #[test]
    fn smoke_rebalance_balances() {
        let theta = smoke_rebalance();
        assert!(theta < 0.2, "θ after Mixed = {theta}");
    }

    #[test]
    fn fig19_structure() {
        // Small structural check without paying for a full run: only
        // verify the sim wiring by running two window sizes directly.
        let mut d = Defaults::at(Scale::Quick);
        d.k = 2_000;
        d.tuples = 20_000;
        d.intervals = 4;
        let r1 = run_core_sim(&d, RebalanceStrategy::Mixed);
        d.window = 5;
        let r5 = run_core_sim(&d, RebalanceStrategy::Mixed);
        assert!(r1.rebalances > 0 && r5.rebalances > 0);
    }
}
