//! # streambal-elastic
//!
//! The elasticity controller: per-interval **scale-out / scale-in / hold**
//! decisions driving downstream parallelism, the decision layer the paper
//! motivates but leaves to a single hard-coded scale-out experiment
//! (Fig. 15). Both drivers consult the same [`ElasticityPolicy`] at every
//! interval boundary — the simulator through `run_sim_elastic`, the engine
//! through `EngineConfig::elasticity` — so a policy's decision trace is
//! identical across them for matching load observations.
//!
//! ## The observation
//!
//! A policy sees an [`IntervalObservation`]: the closed interval's index,
//! the current parallelism, the per-task load vector `Lᵢ(d)` (cost
//! units, the same `cᵢ(k)` sums the rebalance algorithms consume), the
//! per-task input **queue depth** at interval close (tuples — the
//! engine samples tuple-weighted channel occupancy, the simulator a
//! modeled backlog proxy), and the interval's **mean/p99 end-to-end
//! latency** (µs). From it the policy derives whatever signal it wants —
//! the load-watermark built-ins use the mean load against a per-task
//! capacity budget shaped by the paper's `θmax`
//! (`budget = capacity / (1 + θmax)`: a task whose *mean* share exceeds
//! the budget is within θmax of overload even under perfect balance,
//! which is exactly when adding instances — not moving keys — is the
//! only remaining repair), while [`BackpressurePolicy`] watches the
//! queue/latency symptoms directly.
//!
//! ## Built-in policies
//!
//! * [`HoldPolicy`] — never scales (the default; today's static engine).
//! * [`FixedSchedule`] — replays a fixed `(interval → decision)` table;
//!   [`FixedSchedule::scale_out_at`] reproduces the old
//!   `EngineConfig::scale_out_at` behaviour exactly.
//! * [`ThresholdPolicy`] — θ/`Lmax`-style watermarks with hysteresis:
//!   scale out when the mean load stays above the high watermark for
//!   `up_after` consecutive intervals, scale in when the load the
//!   survivors would inherit stays below the low watermark for
//!   `down_after` intervals, with a cooldown after every action. The two
//!   watermarks plus the post-action re-evaluation window are what keeps
//!   a flat load from flapping 4→5→4→5.
//! * [`BackpressurePolicy`] — queue-depth watermarks with the same
//!   hysteresis/cooldown shape: scale out on a standing per-task queue
//!   (optionally a blown p99 latency), scale in when the whole pipeline's
//!   backlog stays drained. This is the Dhalion-style symptom-driven
//!   diagnosis: backpushing shows up in channel depth and latency before
//!   any load/capacity model notices.
//! * [`TargetPlanner`] — the multi-step re-provisioner: smooths total
//!   load with an EWMA, computes a target parallelism
//!   `⌈load / (target_util · capacity)⌉`, and steps **one instance per
//!   interval** toward it, so a large deficit is provisioned over several
//!   intervals instead of one jump (each step's migration stays small and
//!   the policy re-plans against the load it just changed).
//!
//! ## How the engine executes a `ScaleIn` (drain → migrate → retire)
//!
//! Deciding is cheap; retiring a live worker losslessly is the protocol
//! (implemented in `streambal-runtime`, restated here because this crate
//! owns the decision semantics):
//!
//! 1. **Shrink the routing function.** `Partitioner::scale_in(victim, …)`
//!    removes the victim (always the highest-numbered task) from the
//!    table and ring; no key routes to it under the *new* view. The
//!    source keeps routing under the *old* view until step 4.
//! 2. **Pause.** The controller sends the source a victim-destination
//!    pause. The source acknowledges only between routed batches, when
//!    its fan-out accumulators are flushed — so the ack certifies that
//!    every tuple the source will ever send the victim is already in the
//!    victim's FIFO channel, and tuples for victims-to-be are locally
//!    buffered from then on.
//! 3. **Drain + retire.** The controller enqueues a `Retire` marker to
//!    the victim. FIFO ordering puts it behind every batch from step 2,
//!    so the victim processes its entire backlog, then extracts **all**
//!    remaining key state (not just last-interval keys — windowed state
//!    outlives the statistics that created it), ships it to the
//!    controller with its metrics and its (still-connected) channel
//!    receiver, and exits.
//! 4. **Migrate + resume.** The controller re-installs the drained state
//!    on each key's new home under the shrunk view (`StateInstall`, the
//!    Fig. 5 step-5b path), waits for the install acks, and only then
//!    sends `Resume` with the new view — so a key's tuples can reach its
//!    new home only after its state did. The source flushes the pause
//!    buffer under the new view and acknowledges; the controller ships
//!    no worker `Shutdown` while that flush is outstanding.
//!
//! **FIFO-consistency argument.** Every hazard is an ordering between a
//! data batch and a control marker on a single FIFO channel, and each is
//! closed by construction: pre-pause batches precede `Retire` (step 2's
//! ack orders them), `StateInstall` precedes the first post-resume batch
//! on every destination (step 4 sends `Resume` only after install acks),
//! and the buffered-tuple flush precedes `Shutdown` (`ResumeAck`). Hence
//! no tuple is lost or double-counted and no state is extracted before
//! the tuples that produced it have landed — the per-tuple argument of
//! the migration protocol, with "the victim's whole key set" as the
//! affected set. The slot's channel survives retirement (the receiver
//! travels back to the controller), so a later scale-out can re-provision
//! the same slot mid-run with a fresh worker thread.
//!
//! ## Hot-key splitting
//!
//! Scaling out cannot help when a *single key* exceeds one worker's
//! capacity: key-contiguous routing pins all of a key's tuples to one
//! task, so adding instances only adds idle ones. The split decision
//! layer ([`SplitPolicy`]) watches the per-key cost window and flags a
//! key for **salted replication** — the routing layer fans the key
//! across `R` replica slots and a downstream merge stage reconciles the
//! partial state. [`HotKeyPolicy`] is the watermark implementation
//! (same hysteresis/cooldown shape as [`ThresholdPolicy`]);
//! [`FixedSplitSchedule`] replays forced split/unsplit sequences for
//! tests and reproductions. Both drivers consult the policy at interval
//! close with a [`SplitObservation`], so split decision traces pin
//! across sim and engine exactly like scale decisions do.
//!
//! This crate is dependency-free: policies are pure decision logic over
//! load vectors, equally usable from the simulator, the engine, and the
//! benches.

/// One elasticity decision for the coming interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current parallelism.
    Hold,
    /// Add one downstream instance.
    ScaleOut,
    /// Retire the highest-numbered downstream instance.
    ScaleIn,
}

impl ScaleDecision {
    /// Short display name (`hold` / `out` / `in`).
    pub fn name(self) -> &'static str {
        match self {
            ScaleDecision::Hold => "hold",
            ScaleDecision::ScaleOut => "out",
            ScaleDecision::ScaleIn => "in",
        }
    }
}

/// One executed parallelism change, as drivers record it (the simulator's
/// and the engine's reports share this type, so decision traces compare
/// with `==`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// The interval whose statistics triggered the decision.
    pub interval: u64,
    /// Parallelism before.
    pub from: usize,
    /// Parallelism after.
    pub to: usize,
}

/// What a policy sees at an interval boundary.
#[derive(Debug, Clone, Copy)]
pub struct IntervalObservation<'a> {
    /// The interval just closed.
    pub interval: u64,
    /// The *planned* downstream parallelism: what the routing function
    /// targets after every decision taken so far, which is what the next
    /// decision must reason about. In the engine this can be smaller than
    /// `loads.len()` while scale-ins are still re-provisioning.
    pub n_tasks: usize,
    /// Per-task load `Lᵢ(d)` of the closed interval, in cost units,
    /// indexed by task id. May be *longer* than `n_tasks` while a
    /// retiring worker still drains: its slot's load is real traffic the
    /// survivors inherit, so totals keep counting it.
    pub loads: &'a [u64],
    /// Per-task input queue depth at interval close, in *tuples*
    /// (tuple-weighted channel occupancy in the engine; the modeled
    /// backlog proxy in the simulator). This is where the paper's
    /// backpushing effect shows up first: a worker whose queue stays deep
    /// is saturated even when its per-interval load share looks
    /// acceptable. Empty when the driver has no queue signal.
    pub queue_depths: &'a [u64],
    /// Mean end-to-end tuple latency over the closed interval, µs
    /// (0 when the driver has no latency signal).
    pub mean_latency_us: f64,
    /// 99th-percentile end-to-end tuple latency over the closed
    /// interval, µs (0 when the driver has no latency signal).
    pub p99_latency_us: f64,
    /// Worker slots that are dead but not yet respawned. While this is
    /// non-zero the survivors already carry the casualties' keys, so the
    /// observed per-task signals describe a *degraded* topology: policies
    /// must not volunteer a scale-in on top of an unplanned capacity loss
    /// (the engine additionally refuses one), though scale-out remains
    /// the correct response to the resulting overload.
    pub n_dead: usize,
}

impl IntervalObservation<'_> {
    /// Total load of the interval.
    pub fn total(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// Mean per-task load `L̄ᵢ` over the *planned* parallelism — the load
    /// each task will carry once in-flight re-provisioning completes,
    /// which is the quantity watermark policies must compare against
    /// capacity (dividing by the physical count would hide that a
    /// just-decided scale-in leaves the survivors over budget).
    pub fn mean(&self) -> f64 {
        if self.n_tasks == 0 {
            return 0.0;
        }
        self.total() as f64 / self.n_tasks as f64
    }

    /// Deepest per-task input queue at interval close, in tuples (0 when
    /// the driver supplies no queue signal).
    pub fn max_queue(&self) -> u64 {
        self.queue_depths.iter().copied().max().unwrap_or(0)
    }

    /// Total queued tuples across all tasks at interval close.
    pub fn total_queue(&self) -> u64 {
        self.queue_depths.iter().sum()
    }

    /// Worst balance indicator `max θ(d) = max |L(d) − L̄| / L̄` (0 when
    /// idle) — the paper's per-interval imbalance signal.
    pub fn max_theta(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 0.0;
        }
        self.loads
            .iter()
            .map(|&l| (l as f64 - mean).abs() / mean)
            .fold(0.0, f64::max)
    }
}

/// A pluggable per-interval elasticity decision-maker.
///
/// Policies are stateful (streaks, cooldowns, EWMAs) and deterministic:
/// the same observation sequence yields the same decision sequence, which
/// is what makes sim and runtime traces comparable. Drivers clamp
/// decisions against their hard bounds (a free worker slot for scale-out,
/// more than one task for scale-in) — a clamped decision is skipped, not
/// deferred, and the policy is *not* told, so it must keep deciding from
/// observations alone.
pub trait ElasticityPolicy: Send + std::fmt::Debug {
    /// Display name for reports and bench legends.
    fn name(&self) -> String;

    /// Decides what to do after the observed interval.
    fn decide(&mut self, obs: &IntervalObservation) -> ScaleDecision;

    /// Clones the policy with its current state (lets `EngineConfig`
    /// remain `Clone` while holding a boxed policy).
    fn box_clone(&self) -> Box<dyn ElasticityPolicy>;
}

impl Clone for Box<dyn ElasticityPolicy> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

// ------------------------------------------------------------------
// Hold
// ------------------------------------------------------------------

/// Never scales — the static engine of every earlier PR.
#[derive(Debug, Clone, Copy, Default)]
pub struct HoldPolicy;

impl ElasticityPolicy for HoldPolicy {
    fn name(&self) -> String {
        "hold".into()
    }

    fn decide(&mut self, _obs: &IntervalObservation) -> ScaleDecision {
        ScaleDecision::Hold
    }

    fn box_clone(&self) -> Box<dyn ElasticityPolicy> {
        Box::new(*self)
    }
}

// ------------------------------------------------------------------
// Fixed schedule
// ------------------------------------------------------------------

/// Replays a fixed `(interval → decision)` schedule — the reproduction
/// policy. [`FixedSchedule::scale_out_at`] is byte-for-byte the old
/// `EngineConfig::scale_out_at` behaviour (one worker added after that
/// interval's statistics are collected).
#[derive(Debug, Clone, Default)]
pub struct FixedSchedule {
    at: Vec<(u64, ScaleDecision)>,
}

impl FixedSchedule {
    /// A schedule from explicit `(interval, decision)` pairs. Intervals
    /// without an entry hold.
    pub fn new(at: impl IntoIterator<Item = (u64, ScaleDecision)>) -> Self {
        FixedSchedule {
            at: at.into_iter().collect(),
        }
    }

    /// The Fig. 15 experiment: one scale-out after `interval`.
    pub fn scale_out_at(interval: u64) -> Self {
        FixedSchedule::new([(interval, ScaleDecision::ScaleOut)])
    }

    /// The forced elasticity cycle the tests pin: scale out (to double
    /// the parallelism) after `out_at`, scale back in after `in_at` —
    /// `steps` workers each way, one per interval.
    pub fn cycle(out_at: u64, in_at: u64, steps: u64) -> Self {
        let mut at = Vec::new();
        for s in 0..steps {
            at.push((out_at + s, ScaleDecision::ScaleOut));
            at.push((in_at + s, ScaleDecision::ScaleIn));
        }
        FixedSchedule::new(at)
    }
}

impl ElasticityPolicy for FixedSchedule {
    fn name(&self) -> String {
        "fixed".into()
    }

    fn decide(&mut self, obs: &IntervalObservation) -> ScaleDecision {
        self.at
            .iter()
            .find(|&&(iv, _)| iv == obs.interval)
            .map_or(ScaleDecision::Hold, |&(_, d)| d)
    }

    fn box_clone(&self) -> Box<dyn ElasticityPolicy> {
        Box::new(self.clone())
    }
}

// ------------------------------------------------------------------
// Threshold with hysteresis
// ------------------------------------------------------------------

/// θ/`Lmax`-style watermark policy with hysteresis.
///
/// The per-task budget is `capacity / (1 + theta_max)`: `capacity` is the
/// load (cost units per interval) one task can sustain, and dividing by
/// `1 + θmax` reserves the imbalance headroom the rebalancer is allowed
/// to leave — when even the *mean* exceeds the budget, some task must sit
/// above `Lmax` no matter how well keys are placed, so more parallelism
/// is the only repair. Symmetrically, scale-in fires only when the load
/// the `n − 1` survivors would inherit stays under `low · budget`.
///
/// Hysteresis: `high > low` separates the watermarks, `up_after` /
/// `down_after` demand consecutive violations, and `cooldown` suppresses
/// decisions right after an action (whose own transient would otherwise
/// re-trigger).
#[derive(Debug, Clone)]
pub struct ThresholdPolicy {
    /// Sustainable load (cost units per interval) of one task.
    pub capacity: f64,
    /// Imbalance tolerance `θmax` shaping the budget (paper default 0.08).
    pub theta_max: f64,
    /// Scale out when `mean > high · budget` (default 0.9).
    pub high: f64,
    /// Scale in when `total / (n−1) < low · budget` (default 0.6).
    pub low: f64,
    /// Consecutive high intervals before scaling out (default 1).
    pub up_after: usize,
    /// Consecutive low intervals before scaling in (default 2).
    pub down_after: usize,
    /// Intervals to hold after any action (default 1).
    pub cooldown: u64,
    /// Lower parallelism bound.
    pub min_tasks: usize,
    /// Upper parallelism bound.
    pub max_tasks: usize,
    high_streak: usize,
    low_streak: usize,
    hold_until: u64,
}

impl ThresholdPolicy {
    /// A policy for tasks sustaining `capacity` cost units per interval,
    /// scaling within `[min_tasks, max_tasks]`.
    pub fn new(capacity: f64, min_tasks: usize, max_tasks: usize) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(min_tasks >= 1 && min_tasks <= max_tasks, "bad task bounds");
        ThresholdPolicy {
            capacity,
            theta_max: 0.08,
            high: 0.9,
            low: 0.6,
            up_after: 1,
            down_after: 2,
            cooldown: 1,
            min_tasks,
            max_tasks,
            high_streak: 0,
            low_streak: 0,
            hold_until: 0,
        }
    }

    /// The per-task budget `capacity / (1 + θmax)`.
    pub fn budget(&self) -> f64 {
        self.capacity / (1.0 + self.theta_max)
    }
}

impl ElasticityPolicy for ThresholdPolicy {
    fn name(&self) -> String {
        "threshold".into()
    }

    fn decide(&mut self, obs: &IntervalObservation) -> ScaleDecision {
        let budget = self.budget();
        let n = obs.n_tasks;
        let total = obs.total() as f64;
        let mean = obs.mean();
        // Streaks advance even inside the cooldown window: the cooldown
        // delays the *action*, not the evidence.
        if mean > self.high * budget {
            self.high_streak += 1;
        } else {
            self.high_streak = 0;
        }
        let survivors_mean = if n > 1 {
            total / (n - 1) as f64
        } else {
            f64::MAX
        };
        if survivors_mean < self.low * budget {
            self.low_streak += 1;
        } else {
            self.low_streak = 0;
        }
        if obs.interval < self.hold_until {
            return ScaleDecision::Hold;
        }
        if self.high_streak >= self.up_after && n < self.max_tasks {
            self.high_streak = 0;
            self.low_streak = 0;
            self.hold_until = obs.interval + 1 + self.cooldown;
            return ScaleDecision::ScaleOut;
        }
        if self.low_streak >= self.down_after && n > self.min_tasks && obs.n_dead == 0 {
            self.low_streak = 0;
            self.high_streak = 0;
            self.hold_until = obs.interval + 1 + self.cooldown;
            return ScaleDecision::ScaleIn;
        }
        ScaleDecision::Hold
    }

    fn box_clone(&self) -> Box<dyn ElasticityPolicy> {
        Box::new(self.clone())
    }
}

// ------------------------------------------------------------------
// Backpressure watermarks
// ------------------------------------------------------------------

/// Queue-depth watermark policy — the Dhalion-style diagnosis: decide
/// from the *symptom* (standing backlog in the worker channels, where
/// the paper's backpushing effect surfaces first) instead of the cause
/// (per-task load vs. a capacity model the operator must calibrate).
///
/// Scale out when the deepest per-task queue stays above `high_depth`
/// tuples for `up_after` consecutive intervals — a standing queue means
/// some worker's service rate lost to its arrival rate, whatever the
/// load numbers claim. Optionally the p99 interval latency doubles as a
/// second overload symptom (`high_p99_us`, disabled by default): queues
/// saturate at the channel capacity, latency keeps growing past it.
/// Scale in when the *total* queued backlog stays below `low_depth` for
/// `down_after` intervals — survivors can only be expected to absorb a
/// retiree's traffic while the whole pipeline is drained-ish. The
/// hysteresis shape (consecutive-interval streaks, post-action cooldown,
/// `high_depth > low_depth`) is [`ThresholdPolicy`]'s, applied to queue
/// watermarks.
///
/// Unlike load watermarks, queue depth needs no per-task capacity
/// estimate — but it is bounded by the driver's channel capacity, so
/// `high_depth` must sit below that bound to be reachable.
#[derive(Debug, Clone)]
pub struct BackpressurePolicy {
    /// Scale out when `max_queue() > high_depth` (tuples).
    pub high_depth: u64,
    /// Scale in when `total_queue() < low_depth` (tuples).
    pub low_depth: u64,
    /// Additional overload symptom: p99 interval latency above this many
    /// µs counts like a deep queue (`f64::INFINITY` = disabled, the
    /// default).
    pub high_p99_us: f64,
    /// Consecutive backed-up intervals before scaling out (default 1).
    pub up_after: usize,
    /// Consecutive drained intervals before scaling in (default 2).
    pub down_after: usize,
    /// Intervals to hold after any action (default 1).
    pub cooldown: u64,
    /// Lower parallelism bound.
    pub min_tasks: usize,
    /// Upper parallelism bound.
    pub max_tasks: usize,
    high_streak: usize,
    low_streak: usize,
    hold_until: u64,
}

impl BackpressurePolicy {
    /// A policy scaling within `[min_tasks, max_tasks]` on queue-depth
    /// watermarks `high_depth`/`low_depth` (tuples).
    pub fn new(high_depth: u64, low_depth: u64, min_tasks: usize, max_tasks: usize) -> Self {
        assert!(high_depth > low_depth, "watermarks must separate");
        assert!(min_tasks >= 1 && min_tasks <= max_tasks, "bad task bounds");
        BackpressurePolicy {
            high_depth,
            low_depth,
            high_p99_us: f64::INFINITY,
            up_after: 1,
            down_after: 2,
            cooldown: 1,
            min_tasks,
            max_tasks,
            high_streak: 0,
            low_streak: 0,
            hold_until: 0,
        }
    }
}

impl ElasticityPolicy for BackpressurePolicy {
    fn name(&self) -> String {
        "backpressure".into()
    }

    fn decide(&mut self, obs: &IntervalObservation) -> ScaleDecision {
        // Streaks advance inside the cooldown window, as in
        // `ThresholdPolicy`: the cooldown delays the action, not the
        // evidence.
        let backed_up = obs.max_queue() > self.high_depth || obs.p99_latency_us > self.high_p99_us;
        if backed_up {
            self.high_streak += 1;
        } else {
            self.high_streak = 0;
        }
        if obs.total_queue() < self.low_depth {
            self.low_streak += 1;
        } else {
            self.low_streak = 0;
        }
        if obs.interval < self.hold_until {
            return ScaleDecision::Hold;
        }
        if self.high_streak >= self.up_after && obs.n_tasks < self.max_tasks {
            self.high_streak = 0;
            self.low_streak = 0;
            self.hold_until = obs.interval + 1 + self.cooldown;
            return ScaleDecision::ScaleOut;
        }
        if self.low_streak >= self.down_after && obs.n_tasks > self.min_tasks && obs.n_dead == 0 {
            self.low_streak = 0;
            self.high_streak = 0;
            self.hold_until = obs.interval + 1 + self.cooldown;
            return ScaleDecision::ScaleIn;
        }
        ScaleDecision::Hold
    }

    fn box_clone(&self) -> Box<dyn ElasticityPolicy> {
        Box::new(self.clone())
    }
}

// ------------------------------------------------------------------
// Multi-step target planner
// ------------------------------------------------------------------

/// The multi-step re-provisioner: plans a target parallelism from
/// EWMA-smoothed total load and walks toward it one instance per
/// interval.
///
/// `target = ⌈ewma_load / (target_util · capacity)⌉`, clamped to
/// `[min_tasks, max_tasks]`. Stepping (instead of jumping) bounds each
/// interval's migration volume to one worker's worth of state and lets
/// the plan self-correct: the next observation already includes the
/// previous step's effect.
#[derive(Debug, Clone)]
pub struct TargetPlanner {
    /// Sustainable load (cost units per interval) of one task.
    pub capacity: f64,
    /// Fraction of capacity to plan for (default 0.7 — headroom for
    /// variance between plans).
    pub target_util: f64,
    /// EWMA smoothing factor α on total load (default 0.5; 1.0 = react
    /// to the last interval only).
    pub alpha: f64,
    /// Lower parallelism bound.
    pub min_tasks: usize,
    /// Upper parallelism bound.
    pub max_tasks: usize,
    ewma: Option<f64>,
}

impl TargetPlanner {
    /// A planner for tasks sustaining `capacity` cost units per interval,
    /// scaling within `[min_tasks, max_tasks]`.
    pub fn new(capacity: f64, min_tasks: usize, max_tasks: usize) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(min_tasks >= 1 && min_tasks <= max_tasks, "bad task bounds");
        TargetPlanner {
            capacity,
            target_util: 0.7,
            alpha: 0.5,
            min_tasks,
            max_tasks,
            ewma: None,
        }
    }

    /// The parallelism currently planned for (after the last `decide`).
    pub fn planned_tasks(&self) -> Option<usize> {
        self.ewma.map(|l| self.target_for(l))
    }

    fn target_for(&self, load: f64) -> usize {
        let per_task = self.target_util * self.capacity;
        let raw = (load / per_task).ceil() as usize;
        raw.clamp(self.min_tasks, self.max_tasks)
    }
}

impl ElasticityPolicy for TargetPlanner {
    fn name(&self) -> String {
        "planner".into()
    }

    fn decide(&mut self, obs: &IntervalObservation) -> ScaleDecision {
        let total = obs.total() as f64;
        let smoothed = match self.ewma {
            None => total,
            Some(prev) => self.alpha * total + (1.0 - self.alpha) * prev,
        };
        self.ewma = Some(smoothed);
        let target = self.target_for(smoothed);
        match target.cmp(&obs.n_tasks) {
            std::cmp::Ordering::Greater => ScaleDecision::ScaleOut,
            std::cmp::Ordering::Less if obs.n_dead == 0 => ScaleDecision::ScaleIn,
            _ => ScaleDecision::Hold,
        }
    }

    fn box_clone(&self) -> Box<dyn ElasticityPolicy> {
        Box::new(self.clone())
    }
}

// ------------------------------------------------------------------
// Hot-key splitting
// ------------------------------------------------------------------

/// One split decision for the coming interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitDecision {
    /// Change nothing.
    Hold,
    /// Salt `key` across `replicas` slots (primary + `replicas − 1`
    /// others chosen by the driver, see [`choose_replicas`]).
    Split {
        /// The hot key (raw `u64`, this crate is dependency-free).
        key: u64,
        /// Total replica slots, ≥ 2.
        replicas: usize,
    },
    /// Consolidate `key` back onto its primary replica.
    Unsplit {
        /// The previously split key.
        key: u64,
    },
}

impl SplitDecision {
    /// Short display name (`hold` / `split` / `unsplit`).
    pub fn name(self) -> &'static str {
        match self {
            SplitDecision::Hold => "hold",
            SplitDecision::Split { .. } => "split",
            SplitDecision::Unsplit { .. } => "unsplit",
        }
    }
}

/// One executed split/unsplit, as drivers record it. `from`/`to` are the
/// key's replica counts before and after (1 means unsplit), so the sim's
/// and the engine's split traces compare with `==` just like
/// [`ScaleEvent`] traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitEvent {
    /// The interval whose statistics triggered the decision.
    pub interval: u64,
    /// The raw key.
    pub key: u64,
    /// Replica count before (1 = was unsplit).
    pub from: usize,
    /// Replica count after (1 = consolidated).
    pub to: usize,
}

/// What a split policy sees at an interval boundary.
#[derive(Debug, Clone, Copy)]
pub struct SplitObservation<'a> {
    /// The interval just closed.
    pub interval: u64,
    /// Downstream parallelism the routing function targets.
    pub n_tasks: usize,
    /// Per-key `(key, cost)` of the closed interval. Order is
    /// driver-defined; policies must not depend on it.
    pub key_loads: &'a [(u64, u64)],
    /// Keys currently split (ascending). Their `key_loads` entries carry
    /// the key's *total* cost summed across replicas.
    pub split_keys: &'a [u64],
}

impl SplitObservation<'_> {
    /// The hottest currently-unsplit key, deterministically: max cost,
    /// ties broken toward the lower key. `None` when every key is split
    /// or the interval was idle.
    pub fn hottest_unsplit(&self) -> Option<(u64, u64)> {
        self.key_loads
            .iter()
            .filter(|(k, c)| *c > 0 && !self.split_keys.contains(k))
            .copied()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// The cost of `key` this interval (0 when unobserved).
    pub fn cost_of(&self, key: u64) -> u64 {
        self.key_loads
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |&(_, c)| c)
    }
}

/// A pluggable per-interval split/unsplit decision-maker.
///
/// The contract mirrors [`ElasticityPolicy`]: stateful, deterministic,
/// and clamped by the driver (splitting needs ≥ 2 tasks; a decision the
/// driver cannot honour is skipped, not deferred, without telling the
/// policy). At most one decision per interval — splitting is a protocol
/// op with a pause window, so drivers serialize them like migrations.
pub trait SplitPolicy: Send + std::fmt::Debug {
    /// Display name for reports and bench legends.
    fn name(&self) -> String;

    /// Decides what to do after the observed interval.
    fn decide(&mut self, obs: &SplitObservation) -> SplitDecision;

    /// Clones the policy with its current state.
    fn box_clone(&self) -> Box<dyn SplitPolicy>;
}

impl Clone for Box<dyn SplitPolicy> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Picks the replica slots for a split: `primary` first (the key's
/// pre-split route, so unsplit consolidates without a table change),
/// then the `r − 1` least-loaded *other* tasks, ascending by
/// `(load, index)` for determinism. Returns fewer than `r` slots only
/// when there aren't enough tasks.
pub fn choose_replicas(primary: usize, loads: &[u64], r: usize) -> Vec<usize> {
    let mut others: Vec<usize> = (0..loads.len()).filter(|&i| i != primary).collect();
    others.sort_by_key(|&i| (loads[i], i));
    let mut out = Vec::with_capacity(r.min(loads.len()));
    out.push(primary);
    out.extend(others.into_iter().take(r.saturating_sub(1)));
    out
}

/// Watermark split policy with hysteresis — [`ThresholdPolicy`]'s shape
/// applied to a single key's load.
///
/// The per-task budget is `capacity / (1 + theta_max)`, as in
/// [`ThresholdPolicy`]. When the hottest unsplit key's cost stays above
/// `high · budget` for `up_after` consecutive intervals, no placement
/// of whole keys can bring its worker under `Lmax` — the key itself is
/// the imbalance — so the policy splits it. The replica count comes
/// from the key's load *share* `s` of the observed interval: a replica
/// worker carries `(1 − s)/n` of the background plus `s/r` of the key,
/// so keeping it under `(1 + θmax)/n` needs
/// `r ≥ ⌈s · n / (s + θmax)⌉` (clamped to `[2, max_replicas]` and the
/// parallelism). Sizing by share rather than absolute cost is
/// deliberate: a statistics round that catches only part of an
/// interval scales every cost down together, which halves an absolute
/// estimate but leaves the share — and hence the replica count —
/// unchanged. When a split key's total
/// cost stays below `low · budget` for `down_after` intervals, one
/// worker can carry it again and the policy consolidates. A `cooldown`
/// follows every action; streaks keep advancing inside it (the cooldown
/// delays the action, not the evidence).
#[derive(Debug, Clone)]
pub struct HotKeyPolicy {
    /// Sustainable load (cost units per interval) of one task.
    pub capacity: f64,
    /// Imbalance tolerance `θmax` shaping the budget (paper default 0.08).
    pub theta_max: f64,
    /// Split when the hottest key's cost exceeds `high · budget`
    /// (default 0.9).
    pub high: f64,
    /// Unsplit when a split key's cost drops below `low · budget`
    /// (default 0.5).
    pub low: f64,
    /// Consecutive hot intervals before splitting (default 1).
    pub up_after: usize,
    /// Consecutive cool intervals before unsplitting (default 2).
    pub down_after: usize,
    /// Intervals to hold after any action (default 1).
    pub cooldown: u64,
    /// Upper bound on replicas per split key (default 4).
    pub max_replicas: usize,
    /// The key whose hot streak is running, with its count. The streak
    /// follows the *hottest* key: if a different key takes the lead the
    /// streak restarts — a split must be justified by one key's
    /// sustained dominance, not by the maximum hopping around.
    hot: Option<(u64, usize)>,
    /// Cool streaks per currently-split key.
    cool: Vec<(u64, usize)>,
    hold_until: u64,
}

impl HotKeyPolicy {
    /// A policy for tasks sustaining `capacity` cost units per interval.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        HotKeyPolicy {
            capacity,
            theta_max: 0.08,
            high: 0.9,
            low: 0.5,
            up_after: 1,
            down_after: 2,
            cooldown: 1,
            max_replicas: 4,
            hot: None,
            cool: Vec::new(),
            hold_until: 0,
        }
    }

    /// The per-task budget `capacity / (1 + θmax)`.
    pub fn budget(&self) -> f64 {
        self.capacity / (1.0 + self.theta_max)
    }
}

impl SplitPolicy for HotKeyPolicy {
    fn name(&self) -> String {
        "hotkey".into()
    }

    fn decide(&mut self, obs: &SplitObservation) -> SplitDecision {
        let budget = self.budget();
        let high_mark = self.high * budget;
        let low_mark = self.low * budget;

        // Advance the hot streak on the hottest unsplit key.
        match obs.hottest_unsplit() {
            Some((key, cost)) if cost as f64 > high_mark => {
                self.hot = match self.hot {
                    Some((k, n)) if k == key => Some((key, n + 1)),
                    _ => Some((key, 1)),
                };
            }
            _ => self.hot = None,
        }

        // Advance cool streaks for every currently-split key; drop
        // streaks for keys no longer split (the driver may have
        // dissolved one through scale-in repair).
        self.cool.retain(|(k, _)| obs.split_keys.contains(k));
        for &key in obs.split_keys {
            let cool = (obs.cost_of(key) as f64) < low_mark;
            match self.cool.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n = if cool { *n + 1 } else { 0 },
                None => self.cool.push((key, usize::from(cool))),
            }
        }

        if obs.interval < self.hold_until {
            return SplitDecision::Hold;
        }

        // Split takes precedence: overload repair beats consolidation.
        if let Some((key, n)) = self.hot {
            if n >= self.up_after && obs.n_tasks >= 2 {
                let cost = obs.cost_of(key) as f64;
                let total: u64 = obs.key_loads.iter().map(|&(_, c)| c).sum();
                // Share-based sizing: scale-free, so a truncated
                // statistics round sizes the same as a full one.
                let share = cost / total.max(1) as f64;
                let want = (share * obs.n_tasks as f64 / (share + self.theta_max)).ceil() as usize;
                let replicas = want.clamp(2, self.max_replicas.min(obs.n_tasks).max(2));
                self.hot = None;
                self.hold_until = obs.interval + 1 + self.cooldown;
                return SplitDecision::Split { key, replicas };
            }
        }

        // Unsplit the lowest eligible key (deterministic tie-break).
        let done = self
            .cool
            .iter()
            .filter(|&&(_, n)| n >= self.down_after)
            .map(|&(k, _)| k)
            .min();
        if let Some(key) = done {
            self.cool.retain(|(k, _)| *k != key);
            self.hold_until = obs.interval + 1 + self.cooldown;
            return SplitDecision::Unsplit { key };
        }
        SplitDecision::Hold
    }

    fn box_clone(&self) -> Box<dyn SplitPolicy> {
        Box::new(self.clone())
    }
}

/// Replays a fixed `(interval → decision)` split schedule — the
/// reproduction policy for forced-split tests, mirroring
/// [`FixedSchedule`]. Intervals without an entry hold.
#[derive(Debug, Clone, Default)]
pub struct FixedSplitSchedule {
    at: Vec<(u64, SplitDecision)>,
}

impl FixedSplitSchedule {
    /// A schedule from explicit `(interval, decision)` pairs.
    pub fn new(at: impl IntoIterator<Item = (u64, SplitDecision)>) -> Self {
        FixedSplitSchedule {
            at: at.into_iter().collect(),
        }
    }

    /// The forced split cycle tests pin: split `key` over `replicas`
    /// slots after `split_at`, consolidate after `unsplit_at`.
    pub fn cycle(key: u64, replicas: usize, split_at: u64, unsplit_at: u64) -> Self {
        FixedSplitSchedule::new([
            (split_at, SplitDecision::Split { key, replicas }),
            (unsplit_at, SplitDecision::Unsplit { key }),
        ])
    }
}

impl SplitPolicy for FixedSplitSchedule {
    fn name(&self) -> String {
        "fixed-split".into()
    }

    fn decide(&mut self, obs: &SplitObservation) -> SplitDecision {
        self.at
            .iter()
            .find(|&&(iv, _)| iv == obs.interval)
            .map_or(SplitDecision::Hold, |&(_, d)| d)
    }

    fn box_clone(&self) -> Box<dyn SplitPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(interval: u64, loads: &[u64]) -> IntervalObservation<'_> {
        IntervalObservation {
            interval,
            n_tasks: loads.len(),
            loads,
            queue_depths: &[],
            mean_latency_us: 0.0,
            p99_latency_us: 0.0,
            n_dead: 0,
        }
    }

    /// An observation with a queue signal (loads idle: backpressure
    /// policies must not need them).
    fn obs_q<'a>(interval: u64, n_tasks: usize, queues: &'a [u64]) -> IntervalObservation<'a> {
        IntervalObservation {
            interval,
            n_tasks,
            loads: &[],
            queue_depths: queues,
            mean_latency_us: 0.0,
            p99_latency_us: 0.0,
            n_dead: 0,
        }
    }

    #[test]
    fn observation_derivations() {
        let loads = [16, 4];
        let o = obs(0, &loads);
        assert_eq!(o.total(), 20);
        assert!((o.mean() - 10.0).abs() < 1e-12);
        assert!((o.max_theta() - 0.6).abs() < 1e-12);
        let empty: [u64; 0] = [];
        let o = IntervalObservation {
            interval: 0,
            n_tasks: 0,
            loads: &empty,
            queue_depths: &empty,
            mean_latency_us: 0.0,
            p99_latency_us: 0.0,
            n_dead: 0,
        };
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.max_theta(), 0.0);
        assert_eq!(o.max_queue(), 0);
        assert_eq!(o.total_queue(), 0);
    }

    #[test]
    fn hold_never_scales() {
        let mut p = HoldPolicy;
        for iv in 0..10 {
            assert_eq!(p.decide(&obs(iv, &[1_000_000, 0])), ScaleDecision::Hold);
        }
    }

    #[test]
    fn fixed_schedule_reproduces_scale_out_at() {
        let mut p = FixedSchedule::scale_out_at(2);
        let decisions: Vec<ScaleDecision> =
            (0..5).map(|iv| p.decide(&obs(iv, &[10, 10]))).collect();
        assert_eq!(
            decisions,
            vec![
                ScaleDecision::Hold,
                ScaleDecision::Hold,
                ScaleDecision::ScaleOut,
                ScaleDecision::Hold,
                ScaleDecision::Hold,
            ]
        );
    }

    #[test]
    fn fixed_cycle_schedules_out_then_in() {
        let mut p = FixedSchedule::cycle(1, 4, 2);
        let decisions: Vec<&str> = (0..7)
            .map(|iv| p.decide(&obs(iv, &[10, 10])).name())
            .collect();
        assert_eq!(
            decisions,
            vec!["hold", "out", "out", "hold", "in", "in", "hold"]
        );
    }

    #[test]
    fn threshold_scales_out_on_sustained_overload_only() {
        let mut p = ThresholdPolicy::new(100.0, 1, 8);
        p.up_after = 2;
        p.low = 0.0; // disable scale-in for this test
                     // budget ≈ 92.6; mean 95 > 0.9·budget ≈ 83.3.
        assert_eq!(p.decide(&obs(0, &[95, 95])), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs(1, &[95, 95])), ScaleDecision::ScaleOut);
        // Cooldown: the next interval holds even under overload.
        assert_eq!(p.decide(&obs(2, &[95, 95, 95])), ScaleDecision::Hold);
    }

    #[test]
    fn threshold_scales_in_when_survivors_absorb_the_load() {
        let mut p = ThresholdPolicy::new(100.0, 1, 8);
        p.down_after = 2;
        // 4 tasks at 20 → survivors' mean 80/3 ≈ 26.7 < 0.6·92.6 ≈ 55.6.
        assert_eq!(p.decide(&obs(0, &[20, 20, 20, 20])), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs(1, &[20, 20, 20, 20])), ScaleDecision::ScaleIn);
    }

    #[test]
    fn threshold_hysteresis_does_not_flap() {
        // A load flat at mid-band (between low·budget·(n−1)/n and
        // high·budget) must never trigger in either direction.
        let mut p = ThresholdPolicy::new(100.0, 1, 8);
        for iv in 0..20 {
            // mean 70: below high (83.3); survivors' mean 93.3 above low.
            assert_eq!(
                p.decide(&obs(iv, &[70, 70, 70])),
                ScaleDecision::Hold,
                "interval {iv}"
            );
        }
    }

    #[test]
    fn threshold_respects_bounds() {
        let mut p = ThresholdPolicy::new(100.0, 2, 2);
        assert_eq!(p.decide(&obs(0, &[500, 500])), ScaleDecision::Hold);
        let mut p = ThresholdPolicy::new(100.0, 2, 2);
        p.down_after = 1;
        assert_eq!(p.decide(&obs(0, &[1, 1])), ScaleDecision::Hold);
    }

    #[test]
    fn threshold_streaks_reset_on_recovery() {
        let mut p = ThresholdPolicy::new(100.0, 1, 8);
        p.up_after = 2;
        assert_eq!(p.decide(&obs(0, &[95, 95])), ScaleDecision::Hold);
        // Recovery interval breaks the streak.
        assert_eq!(p.decide(&obs(1, &[70, 70])), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs(2, &[95, 95])), ScaleDecision::Hold);
    }

    #[test]
    fn backpressure_scales_out_on_standing_queue_only() {
        let mut p = BackpressurePolicy::new(100, 10, 1, 8);
        p.up_after = 2;
        // One deep sample is noise; two consecutive are a standing queue.
        assert_eq!(p.decide(&obs_q(0, 2, &[150, 0])), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs_q(1, 2, &[150, 0])), ScaleDecision::ScaleOut);
        // Cooldown: the next interval holds even while still backed up.
        assert_eq!(p.decide(&obs_q(2, 3, &[150, 0, 0])), ScaleDecision::Hold);
    }

    #[test]
    fn backpressure_streak_resets_when_queue_drains() {
        let mut p = BackpressurePolicy::new(100, 10, 1, 8);
        p.up_after = 2;
        assert_eq!(p.decide(&obs_q(0, 2, &[150, 0])), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs_q(1, 2, &[0, 0])), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs_q(2, 2, &[150, 0])), ScaleDecision::Hold);
    }

    #[test]
    fn backpressure_scales_in_when_pipeline_drains() {
        let mut p = BackpressurePolicy::new(100, 10, 1, 8);
        p.down_after = 2;
        assert_eq!(p.decide(&obs_q(0, 4, &[1, 2, 0, 1])), ScaleDecision::Hold);
        assert_eq!(
            p.decide(&obs_q(1, 4, &[1, 2, 0, 1])),
            ScaleDecision::ScaleIn
        );
    }

    #[test]
    fn backpressure_mid_band_never_flaps() {
        // Queues between the watermarks (total ≥ low, max ≤ high): hold
        // forever in either direction.
        let mut p = BackpressurePolicy::new(100, 10, 1, 8);
        for iv in 0..20 {
            assert_eq!(
                p.decide(&obs_q(iv, 3, &[40, 30, 20])),
                ScaleDecision::Hold,
                "interval {iv}"
            );
        }
    }

    #[test]
    fn backpressure_respects_bounds() {
        let mut p = BackpressurePolicy::new(100, 10, 2, 2);
        assert_eq!(p.decide(&obs_q(0, 2, &[500, 500])), ScaleDecision::Hold);
        let mut p = BackpressurePolicy::new(100, 10, 2, 2);
        p.down_after = 1;
        assert_eq!(p.decide(&obs_q(0, 2, &[0, 0])), ScaleDecision::Hold);
    }

    #[test]
    fn backpressure_latency_symptom_counts_as_overload() {
        let mut p = BackpressurePolicy::new(100, 10, 1, 8);
        p.high_p99_us = 5_000.0;
        // Queues shallow (sampled between bursts) but tail latency blown:
        // the latency symptom fires the same scale-out path.
        let o = IntervalObservation {
            interval: 0,
            n_tasks: 2,
            loads: &[],
            queue_depths: &[3, 1],
            mean_latency_us: 2_000.0,
            p99_latency_us: 20_000.0,
            n_dead: 0,
        };
        assert_eq!(p.decide(&o), ScaleDecision::ScaleOut);
    }

    /// While a worker slot is dead, policies must refuse to scale in no
    /// matter how drained the survivors look — an unplanned capacity loss
    /// never justifies a voluntary one — but must still allow scale-out.
    #[test]
    fn no_policy_scales_in_while_degraded() {
        let degraded = |interval, loads: &'static [u64]| IntervalObservation {
            interval,
            n_tasks: loads.len(),
            loads,
            queue_depths: &[],
            mean_latency_us: 0.0,
            p99_latency_us: 0.0,
            n_dead: 1,
        };
        let mut t = ThresholdPolicy::new(100.0, 1, 8);
        t.down_after = 1;
        for iv in 0..4 {
            assert_eq!(
                t.decide(&degraded(iv, &[5, 5, 5, 5])),
                ScaleDecision::Hold,
                "threshold interval {iv}"
            );
        }
        // The same trace with the slot revived scales in at once: the
        // low streak kept accumulating while the action was held.
        assert_eq!(t.decide(&obs(4, &[5, 5, 5, 5])), ScaleDecision::ScaleIn);

        let mut b = BackpressurePolicy::new(100, 10, 1, 8);
        b.down_after = 1;
        let mut drained = degraded(0, &[]);
        drained.n_tasks = 3;
        assert_eq!(b.decide(&drained), ScaleDecision::Hold, "backpressure");

        let mut pl = TargetPlanner::new(100.0, 1, 16);
        pl.alpha = 1.0;
        assert_eq!(pl.decide(&degraded(0, &[5, 5, 5, 5])), ScaleDecision::Hold);

        // Scale-out stays live under degradation: overload on the
        // survivors is exactly when replacement capacity is needed.
        let mut t = ThresholdPolicy::new(100.0, 1, 8);
        assert_eq!(
            t.decide(&degraded(0, &[95, 95])),
            ScaleDecision::ScaleOut,
            "degradation must not block scale-out"
        );
    }

    #[test]
    fn planner_steps_toward_target_one_at_a_time() {
        let mut p = TargetPlanner::new(100.0, 1, 16);
        p.alpha = 1.0; // no smoothing: deterministic targets
                       // Load 560 at util 0.7 → target ⌈560/70⌉ = 8; from 4 tasks the
                       // planner emits ScaleOut each interval until parallelism reaches
                       // the target, then holds.
        let mut n = 4usize;
        let mut steps = Vec::new();
        for iv in 0..8 {
            let loads: Vec<u64> = (0..n).map(|_| 560 / n as u64).collect();
            let d = p.decide(&obs(iv, &loads));
            if d == ScaleDecision::ScaleOut {
                n += 1;
            }
            steps.push((d, n));
        }
        assert_eq!(p.planned_tasks(), Some(8));
        assert_eq!(n, 8, "reached the target: {steps:?}");
        assert!(
            steps[4..].iter().all(|&(d, _)| d == ScaleDecision::Hold),
            "held after convergence: {steps:?}"
        );
    }

    #[test]
    fn planner_steps_back_down_when_load_drops() {
        let mut p = TargetPlanner::new(100.0, 2, 16);
        p.alpha = 1.0;
        let loads = [10u64, 10, 10, 10, 10, 10];
        // Target ⌈60/70⌉ = 1, clamped to min 2 → scale in from 6.
        assert_eq!(p.decide(&obs(0, &loads)), ScaleDecision::ScaleIn);
    }

    #[test]
    fn planner_ewma_smooths_spikes() {
        let mut p = TargetPlanner::new(100.0, 1, 16);
        p.alpha = 0.25;
        // Steady 140 (target 2), one interval spikes to 1400.
        let steady = [70u64, 70];
        assert_eq!(p.decide(&obs(0, &steady)), ScaleDecision::Hold);
        // Smoothed: 0.25·1400 + 0.75·140 = 455 → target 7 > 2 → out,
        // but one recovery interval pulls the EWMA back down fast.
        let spike = [700u64, 700];
        assert_eq!(p.decide(&obs(1, &spike)), ScaleDecision::ScaleOut);
        let mut n = 3usize;
        let mut peak = n;
        for iv in 2..40 {
            let loads: Vec<u64> = vec![140 / n as u64; n];
            match p.decide(&obs(iv, &loads)) {
                ScaleDecision::ScaleIn => n -= 1,
                ScaleDecision::ScaleOut => n += 1,
                ScaleDecision::Hold => {}
            }
            peak = peak.max(n);
        }
        // α = 0.25 discounts the one-interval spike: the overshoot stays
        // far below the spike's raw target (⌈1400/70⌉ = 20)…
        assert!(peak <= 7, "smoothing failed: peaked at {peak}");
        // …and the EWMA walks parallelism back once the load recovers.
        assert_eq!(n, 2, "EWMA converged back after the spike");
    }

    fn sobs<'a>(
        interval: u64,
        n_tasks: usize,
        key_loads: &'a [(u64, u64)],
        split_keys: &'a [u64],
    ) -> SplitObservation<'a> {
        SplitObservation {
            interval,
            n_tasks,
            key_loads,
            split_keys,
        }
    }

    #[test]
    fn hottest_unsplit_is_deterministic() {
        let loads = [(7u64, 50u64), (3, 90), (9, 90), (1, 0)];
        let o = sobs(0, 4, &loads, &[]);
        // Tie at 90 breaks toward the lower key.
        assert_eq!(o.hottest_unsplit(), Some((3, 90)));
        // A split key is excluded from the scan.
        let o = sobs(0, 4, &loads, &[3]);
        assert_eq!(o.hottest_unsplit(), Some((9, 90)));
        assert_eq!(o.cost_of(7), 50);
        assert_eq!(o.cost_of(42), 0);
    }

    #[test]
    fn choose_replicas_prefers_idle_tasks() {
        // Primary 2 first, then the least-loaded others by (load, index).
        assert_eq!(choose_replicas(2, &[40, 10, 99, 10], 3), vec![2, 1, 3]);
        // Asking for more slots than tasks returns all of them.
        assert_eq!(choose_replicas(0, &[5, 5], 8), vec![0, 1]);
    }

    #[test]
    fn hotkey_splits_on_sustained_dominance_only() {
        let mut p = HotKeyPolicy::new(100.0);
        p.up_after = 2;
        // budget ≈ 92.6, high mark ≈ 83.3; key 5 carries 170.
        let hot = [(5u64, 170u64), (6, 10), (7, 10)];
        assert_eq!(p.decide(&sobs(0, 4, &hot, &[])), SplitDecision::Hold);
        // Share 170/190 ≈ 0.895 → ⌈0.895 · 4 / 0.975⌉ = 4 replicas.
        assert_eq!(
            p.decide(&sobs(1, 4, &hot, &[])),
            SplitDecision::Split {
                key: 5,
                replicas: 4
            }
        );
        // Cooldown: still hot next interval, but the action is held.
        assert_eq!(p.decide(&sobs(2, 4, &hot, &[5])), SplitDecision::Hold);
    }

    #[test]
    fn hotkey_streak_resets_when_the_leader_changes() {
        let mut p = HotKeyPolicy::new(100.0);
        p.up_after = 2;
        assert_eq!(
            p.decide(&sobs(0, 4, &[(5, 170), (6, 10)], &[])),
            SplitDecision::Hold
        );
        // A different key takes the lead: no split on its first interval.
        assert_eq!(
            p.decide(&sobs(1, 4, &[(5, 10), (6, 170)], &[])),
            SplitDecision::Hold
        );
    }

    #[test]
    fn hotkey_unsplits_when_the_key_cools() {
        let mut p = HotKeyPolicy::new(100.0);
        p.down_after = 2;
        p.cooldown = 0;
        // Key 5 split, now cold (low mark ≈ 46.3).
        let cold = [(5u64, 20u64), (6, 10)];
        assert_eq!(p.decide(&sobs(0, 4, &cold, &[5])), SplitDecision::Hold);
        assert_eq!(
            p.decide(&sobs(1, 4, &cold, &[5])),
            SplitDecision::Unsplit { key: 5 }
        );
    }

    #[test]
    fn hotkey_mid_band_never_flaps() {
        // A split key between the watermarks must stay split; an unsplit
        // key between them must stay unsplit.
        let mut p = HotKeyPolicy::new(100.0);
        let mid = [(5u64, 60u64), (6, 10)];
        for iv in 0..20 {
            assert_eq!(
                p.decide(&sobs(iv, 4, &mid, &[5])),
                SplitDecision::Hold,
                "interval {iv}"
            );
        }
        let mut p = HotKeyPolicy::new(100.0);
        for iv in 0..20 {
            assert_eq!(
                p.decide(&sobs(iv, 4, &mid, &[])),
                SplitDecision::Hold,
                "interval {iv}"
            );
        }
    }

    #[test]
    fn hotkey_respects_replica_and_task_bounds() {
        // 2 tasks: replicas clamp to 2 even for a huge key.
        let mut p = HotKeyPolicy::new(100.0);
        assert_eq!(
            p.decide(&sobs(0, 2, &[(5, 100_000)], &[])),
            SplitDecision::Split {
                key: 5,
                replicas: 2
            }
        );
        // 1 task: splitting is meaningless, hold.
        let mut p = HotKeyPolicy::new(100.0);
        assert_eq!(
            p.decide(&sobs(0, 1, &[(5, 100_000)], &[])),
            SplitDecision::Hold
        );
        // max_replicas caps the spread.
        let mut p = HotKeyPolicy::new(100.0);
        p.max_replicas = 3;
        assert_eq!(
            p.decide(&sobs(0, 16, &[(5, 100_000)], &[])),
            SplitDecision::Split {
                key: 5,
                replicas: 3
            }
        );
    }

    #[test]
    fn hotkey_split_beats_unsplit_and_serializes_actions() {
        let mut p = HotKeyPolicy::new(100.0);
        p.down_after = 1;
        p.cooldown = 0;
        // Key 3 is split and cold; key 5 is hot: split wins the interval.
        let loads = [(3u64, 5u64), (5, 170), (6, 10)];
        assert_eq!(
            p.decide(&sobs(0, 4, &loads, &[3])),
            SplitDecision::Split {
                key: 5,
                replicas: 4
            }
        );
        // The postponed unsplit fires on the next eligible interval.
        let loads = [(3u64, 5u64), (5, 60), (6, 10)];
        assert_eq!(
            p.decide(&sobs(1, 4, &loads, &[3, 5])),
            SplitDecision::Unsplit { key: 3 }
        );
    }

    #[test]
    fn fixed_split_schedule_replays() {
        let mut p = FixedSplitSchedule::cycle(9, 2, 1, 3);
        let names: Vec<&str> = (0..5)
            .map(|iv| p.decide(&sobs(iv, 4, &[], &[])).name())
            .collect();
        assert_eq!(names, vec!["hold", "split", "hold", "unsplit", "hold"]);
        assert_eq!(
            FixedSplitSchedule::cycle(9, 2, 1, 3).decide(&sobs(3, 4, &[], &[])),
            SplitDecision::Unsplit { key: 9 }
        );
    }

    #[test]
    fn boxed_split_policies_clone_with_state() {
        let mut p = HotKeyPolicy::new(100.0);
        p.up_after = 2;
        let hot = [(5u64, 170u64)];
        let _ = p.decide(&sobs(0, 4, &hot, &[])); // streak = 1
        let mut boxed: Box<dyn SplitPolicy> = Box::new(p);
        let mut cloned = boxed.clone();
        assert!(matches!(
            cloned.decide(&sobs(1, 4, &hot, &[])),
            SplitDecision::Split { key: 5, .. }
        ));
        assert!(matches!(
            boxed.decide(&sobs(1, 4, &hot, &[])),
            SplitDecision::Split { key: 5, .. }
        ));
        assert_eq!(boxed.name(), "hotkey");
    }

    #[test]
    fn boxed_policies_clone_with_state() {
        let mut p = ThresholdPolicy::new(100.0, 1, 8);
        p.up_after = 2;
        let _ = p.decide(&obs(0, &[95, 95])); // streak = 1
        let mut boxed: Box<dyn ElasticityPolicy> = Box::new(p);
        let mut cloned = boxed.clone();
        // Both fire on the next interval: the streak survived the clone.
        assert_eq!(cloned.decide(&obs(1, &[95, 95])), ScaleDecision::ScaleOut);
        assert_eq!(boxed.decide(&obs(1, &[95, 95])), ScaleDecision::ScaleOut);
        assert_eq!(boxed.name(), "threshold");
    }
}
