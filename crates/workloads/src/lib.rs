//! Workload generators reproducing the paper's evaluation inputs (§V).
//!
//! | Paper workload | Module | Notes |
//! |----------------|--------|-------|
//! | Synthetic Zipf tuples with skew `z` and fluctuation rate `f` | [`zipf`] | the Tab. II parameter grid |
//! | 5-day microblog **Social** feed, 180 K topic words, slow drift | [`social`] | synthetic substitution, see DESIGN.md |
//! | 3-day **Stock** exchange records, 1,036 keys, abrupt bursts | [`stock`] | synthetic substitution |
//! | TPC-H `DBGen` with zipfed foreign keys + continuous Q5 | [`tpch`] | scaled-down DBGen-like generator |
//! | Adversarial key churn (fresh hot set every interval) | [`churn`] | elasticity/table stressor, beyond the paper |
//!
//! Each generator is deterministic given a seed and produces, per logical
//! interval, both:
//!
//! * an [`IntervalStats`](streambal_core::IntervalStats) view (for the
//!   simulator, which never materializes tuples), and
//! * a concrete tuple sequence (for the runtime).

pub mod churn;
pub mod social;
pub mod stock;
pub mod tpch;
pub mod zipf;

pub use churn::ChurnWorkload;
pub use social::SocialWorkload;
pub use stock::StockWorkload;
pub use tpch::{TpchEvent, TpchGen, TpchParams};
pub use zipf::{CostModel, FluctuatingWorkload, ZipfGen};
