//! Per-interval key statistics and the sliding statistics window.
//!
//! Paper §II-A: for each interval `Tᵢ` and key `k` the system measures the
//! frequency `gᵢ(k)`, the computation cost `cᵢ(k)` (CPU units consumed by
//! all tuples of `k`), and the memory footprint `sᵢ(k)` of the state
//! written in that interval. Stateful operators keep the last `w` intervals
//! of state, so the migration-relevant memory of a key is the windowed sum
//! `Sᵢ(k, w) = Σ_{j=i-w+1..i} sⱼ(k)` — that is what must travel when the
//! key is reassigned.

use streambal_hashring::FxHashMap;

use crate::key::{Key, TaskId};

/// Measurements for one key in one interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyStat {
    /// Tuple count `gᵢ(k)`.
    pub freq: u64,
    /// Computation cost `cᵢ(k)`, in abstract CPU units. Generally grows
    /// with `freq` but the algorithms make no assumption about the
    /// correlation (paper §II-A).
    pub cost: u64,
    /// State bytes `sᵢ(k)` written in this interval.
    pub mem: u64,
}

/// All key statistics reported for one interval by the downstream tasks.
#[derive(Debug, Clone, Default)]
pub struct IntervalStats {
    stats: FxHashMap<Key, KeyStat>,
}

impl IntervalStats {
    /// Creates an empty interval report.
    pub fn new() -> Self {
        IntervalStats::default()
    }

    /// Accumulates one observation for `key` (tasks call this per tuple or
    /// per batch; repeated calls add up).
    #[inline]
    pub fn observe(&mut self, key: Key, freq: u64, cost: u64, mem: u64) {
        let e = self.stats.entry(key).or_default();
        e.freq += freq;
        e.cost += cost;
        e.mem += mem;
    }

    /// Merges another interval report (e.g. the per-task shards collected
    /// by the controller in workflow step 1 of Fig. 5).
    pub fn merge(&mut self, other: &IntervalStats) {
        for (&k, s) in &other.stats {
            self.observe(k, s.freq, s.cost, s.mem);
        }
    }

    /// Statistics for one key, if observed this interval.
    #[inline]
    pub fn get(&self, key: Key) -> Option<KeyStat> {
        self.stats.get(&key).copied()
    }

    /// Number of distinct keys observed.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterates `(key, stat)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, KeyStat)> + '_ {
        self.stats.iter().map(|(&k, &s)| (k, s))
    }

    /// Total computation cost across all keys.
    pub fn total_cost(&self) -> u64 {
        self.stats.values().map(|s| s.cost).sum()
    }
}

impl FromIterator<(Key, KeyStat)> for IntervalStats {
    fn from_iter<T: IntoIterator<Item = (Key, KeyStat)>>(iter: T) -> Self {
        let mut s = IntervalStats::new();
        for (k, st) in iter {
            s.observe(k, st.freq, st.cost, st.mem);
        }
        s
    }
}

/// Sliding window over the last `w` interval reports.
///
/// Provides `Sᵢ(k, w)` (windowed memory) and the last interval's costs —
/// exactly the inputs the rebalance optimization is allowed to use (the
/// plan for `Tᵢ` is computed from `Tᵢ₋₁` and the window, §II-B).
#[derive(Debug, Clone)]
pub struct StatsWindow {
    window: usize,
    intervals: std::collections::VecDeque<IntervalStats>,
}

impl StatsWindow {
    /// Creates a window retaining the last `w ≥ 1` intervals.
    ///
    /// # Panics
    /// Panics if `w == 0` — a stateful operator keeps at least the current
    /// interval's state.
    pub fn new(w: usize) -> Self {
        assert!(w >= 1, "window must hold at least one interval");
        StatsWindow {
            window: w,
            intervals: std::collections::VecDeque::with_capacity(w),
        }
    }

    /// The configured window length `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of intervals currently held (≤ `w`).
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when no interval has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Pushes the newest interval, evicting the `w+1`-old one ("the task
    /// instance erases the state from interval `Tᵢ₋w`", §II-A).
    pub fn push(&mut self, stats: IntervalStats) {
        if self.intervals.len() == self.window {
            self.intervals.pop_front();
        }
        self.intervals.push_back(stats);
    }

    /// The most recent interval, if any.
    pub fn latest(&self) -> Option<&IntervalStats> {
        self.intervals.back()
    }

    /// Iterates the held intervals, oldest first — the windowed key
    /// enumeration scale planning needs (every key listed here recently
    /// carried state, whatever slice of them the last single interval
    /// happened to observe).
    pub fn intervals(&self) -> impl Iterator<Item = &IntervalStats> + '_ {
        self.intervals.iter()
    }

    /// The union of `live` with every key in the window, deduplicated —
    /// the state-bearing key set scale-out pre-placement plans over.
    /// `live` is typically the just-closed interval's observations,
    /// which on a loaded box can be an arbitrarily thin slice of the
    /// keyspace (statistics rounds blur when the controller lags), while
    /// the window names every key that recently carried state.
    pub fn union_keys(&self, live: impl IntoIterator<Item = Key>) -> Vec<Key> {
        let mut seen: streambal_hashring::FxHashSet<Key> = live.into_iter().collect();
        for iv in self.intervals() {
            seen.extend(iv.iter().map(|(k, _)| k));
        }
        seen.into_iter().collect()
    }

    /// Windowed memory `Sᵢ(k, w)` — the migration cost contribution of `k`.
    pub fn windowed_mem(&self, key: Key) -> u64 {
        self.intervals
            .iter()
            .filter_map(|iv| iv.get(key))
            .map(|s| s.mem)
            .sum()
    }

    /// Builds the flat per-key records the rebalance algorithms consume:
    /// cost from the latest interval, memory summed over the window, with
    /// the current and hash destinations provided by `route`.
    ///
    /// Keys observed only in older intervals (state still alive, but no
    /// fresh tuples) are included with zero cost: their state still has to
    /// move if the key is reassigned, and the optimizer must know that.
    pub fn records(&self, mut route: impl FnMut(Key) -> (TaskId, TaskId)) -> Vec<KeyRecord> {
        let mut mem: FxHashMap<Key, u64> = FxHashMap::default();
        for iv in &self.intervals {
            for (k, s) in iv.iter() {
                *mem.entry(k).or_insert(0) += s.mem;
            }
        }
        let latest = self.intervals.back();
        let mut out = Vec::with_capacity(mem.len());
        for (k, m) in mem {
            let cost = latest.and_then(|iv| iv.get(k)).map_or(0, |s| s.cost);
            let (current, hash_dest) = route(k);
            out.push(KeyRecord {
                key: k,
                cost,
                mem: m,
                current,
                hash_dest,
            });
        }
        // Deterministic order for reproducible plans.
        out.sort_unstable_by_key(|r| r.key);
        out
    }
}

/// One key's rebalance-relevant view: the unit the algorithms operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRecord {
    /// The key.
    pub key: Key,
    /// Computation cost `cᵢ₋₁(k)` from the last interval.
    pub cost: u64,
    /// Windowed state size `Sᵢ₋₁(k, w)` — what migration of this key costs.
    pub mem: u64,
    /// Current destination `F(k)` under the active assignment.
    pub current: TaskId,
    /// Hash destination `h(k)`; `F(k) ≠ h(k)` ⇔ the key occupies a routing
    /// table entry.
    pub hash_dest: TaskId,
}

impl KeyRecord {
    /// The migration-priority index `γᵢ(k, w) = cᵢ(k)^β / Sᵢ(k, w)`
    /// (paper §III-B). Higher means "cheap to move per unit of load
    /// shifted". Zero-memory keys get `+∞` — moving them is free.
    #[inline]
    pub fn gamma(&self, beta: f64) -> f64 {
        if self.mem == 0 {
            return f64::INFINITY;
        }
        (self.cost as f64).powf(beta) / self.mem as f64
    }

    /// Whether this key occupies a routing-table entry.
    #[inline]
    pub fn in_table(&self) -> bool {
        self.current != self.hash_dest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Key {
        Key(v)
    }

    #[test]
    fn observe_accumulates() {
        let mut iv = IntervalStats::new();
        iv.observe(k(1), 1, 10, 100);
        iv.observe(k(1), 2, 20, 200);
        assert_eq!(
            iv.get(k(1)),
            Some(KeyStat {
                freq: 3,
                cost: 30,
                mem: 300
            })
        );
        assert_eq!(iv.len(), 1);
        assert_eq!(iv.total_cost(), 30);
    }

    #[test]
    fn merge_adds_shards() {
        let mut a = IntervalStats::new();
        a.observe(k(1), 1, 5, 0);
        let mut b = IntervalStats::new();
        b.observe(k(1), 1, 5, 0);
        b.observe(k(2), 1, 7, 0);
        a.merge(&b);
        assert_eq!(a.get(k(1)).unwrap().cost, 10);
        assert_eq!(a.get(k(2)).unwrap().cost, 7);
    }

    #[test]
    fn window_evicts_old_intervals() {
        let mut w = StatsWindow::new(2);
        for mem in [10u64, 20, 40] {
            let mut iv = IntervalStats::new();
            iv.observe(k(1), 1, 1, mem);
            w.push(iv);
        }
        // Window keeps the last two: 20 + 40.
        assert_eq!(w.windowed_mem(k(1)), 60);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn windowed_mem_sums_only_present_intervals() {
        let mut w = StatsWindow::new(5);
        let mut iv = IntervalStats::new();
        iv.observe(k(9), 1, 1, 33);
        w.push(iv);
        w.push(IntervalStats::new());
        assert_eq!(w.windowed_mem(k(9)), 33);
        assert_eq!(w.windowed_mem(k(8)), 0);
    }

    #[test]
    fn records_include_stale_state_keys_with_zero_cost() {
        let mut w = StatsWindow::new(3);
        let mut old = IntervalStats::new();
        old.observe(k(1), 5, 50, 500); // active earlier
        w.push(old);
        let mut new = IntervalStats::new();
        new.observe(k(2), 1, 10, 100); // active now
        w.push(new);

        let recs = w.records(|_| (TaskId(0), TaskId(0)));
        assert_eq!(recs.len(), 2);
        let r1 = recs.iter().find(|r| r.key == k(1)).unwrap();
        assert_eq!(r1.cost, 0, "stale key contributes no load");
        assert_eq!(r1.mem, 500, "but its state still must move");
        let r2 = recs.iter().find(|r| r.key == k(2)).unwrap();
        assert_eq!(r2.cost, 10);
        assert_eq!(r2.mem, 100);
    }

    #[test]
    fn records_sorted_by_key() {
        let mut w = StatsWindow::new(1);
        let mut iv = IntervalStats::new();
        for key in [5u64, 1, 9, 3] {
            iv.observe(k(key), 1, 1, 1);
        }
        w.push(iv);
        let recs = w.records(|_| (TaskId(0), TaskId(0)));
        let keys: Vec<u64> = recs.iter().map(|r| r.key.raw()).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn gamma_priority() {
        let rec = |cost, mem| KeyRecord {
            key: k(0),
            cost,
            mem,
            current: TaskId(0),
            hash_dest: TaskId(0),
        };
        // β = 1: γ = c / S.
        assert_eq!(rec(8, 4).gamma(1.0), 2.0);
        // Heavier cost per byte ⇒ higher priority.
        assert!(rec(8, 4).gamma(1.0) > rec(4, 4).gamma(1.0));
        // β = 0.5 de-emphasizes cost: c=7,S=7 → 7^0.5/7 < 1.
        assert!(rec(7, 7).gamma(0.5) < 1.0);
        // Zero memory is free to move.
        assert_eq!(rec(1, 0).gamma(1.5), f64::INFINITY);
    }

    #[test]
    fn in_table_flag() {
        let r = KeyRecord {
            key: k(1),
            cost: 1,
            mem: 1,
            current: TaskId(2),
            hash_dest: TaskId(0),
        };
        assert!(r.in_table());
        let r2 = KeyRecord {
            current: TaskId(0),
            ..r
        };
        assert!(!r2.in_table());
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn zero_window_panics() {
        StatsWindow::new(0);
    }
}
