//! The partitioning interface: the contract between routing strategies
//! and everything that drives them (the simulator, the engine, the
//! experiment harness).
//!
//! This lives in `streambal-core` — not in the baselines crate — because
//! the trait *is* the paper's framing: any strategy, including the
//! competitors reproduced in `streambal-baselines`, is a routing function
//! plus an interval-boundary rebalance hook (§II). Drivers depend on this
//! crate alone; the baselines crate implements the trait for Storm-style
//! hashing, shuffle, PKG, and Readj, and adapts [`Rebalancer`] through its
//! `CoreBalancer` wrapper.
//!
//! [`Rebalancer`]: crate::Rebalancer

use crate::routing::RoutingTable;
use crate::stats::IntervalStats;
use crate::{Key, RebalanceOutcome, TaskId};

/// A cheap, self-contained snapshot of a partitioner's routing function,
/// shippable to source threads (the engine's "tuples router" of Fig. 5
/// holds one of these and receives a fresh one on each Resume).
#[derive(Debug, Clone)]
pub enum RoutingView {
    /// Explicit table over a consistent-hash fallback (Eq. 1). The hash
    /// ring is reconstructed deterministically from `n_tasks`.
    TablePlusHash {
        /// The explicit entries.
        table: RoutingTable,
        /// Ring size.
        n_tasks: usize,
    },
    /// PKG's power-of-two-choices (the view carries no load state; each
    /// holder balances with its own local estimates, as PKG prescribes).
    TwoChoice {
        /// Slot count.
        n_tasks: usize,
    },
    /// Key-oblivious round-robin.
    RoundRobin {
        /// Slot count.
        n_tasks: usize,
    },
    /// An incremental update to a previously shipped
    /// [`RoutingView::TablePlusHash`]: the rebalance's move list, to be
    /// applied on top of the holder's current table
    /// (`AssignmentFn::apply_delta` semantics — a move to the key's hash
    /// destination removes its entry). `O(churn)` to ship and apply where
    /// a full view is `O(table)`; only valid against a holder already
    /// carrying a table view with the same `n_tasks` (full views remain
    /// the resync points: startup, scale-out/in, staleness resyncs).
    TableDelta {
        /// Ring size the delta was computed against (unchanged by it).
        n_tasks: usize,
        /// The rebalance's `(key, new destination)` moves.
        moves: Vec<(Key, TaskId)>,
    },
    /// [`RoutingView::TablePlusHash`] extended with a hot-key split
    /// table: each `(key, replicas)` pair salts one flagged-hot key
    /// across its replica slots (primary first), rotated per tuple by
    /// each holder (`AssignmentFn` split semantics — cursors are
    /// per-holder and deliberately not part of the view). Emitted only
    /// while at least one key is split; the moment the last split
    /// dissolves, views collapse back to plain `TablePlusHash`, so
    /// non-splitting runs never see (or pay for) this variant.
    SplitTable {
        /// The explicit entries.
        table: RoutingTable,
        /// Ring size.
        n_tasks: usize,
        /// Split keys with their replica sets, sorted by key.
        splits: Vec<(Key, Vec<TaskId>)>,
    },
}

impl RoutingView {
    /// The canonical table-backed view of `assignment`: plain
    /// [`RoutingView::TablePlusHash`] when no key is split, the
    /// split-carrying variant otherwise. Every `AssignmentFn`-backed
    /// partitioner builds its view through this, so split visibility is
    /// uniform across strategies.
    pub fn of_assignment(assignment: &crate::routing::AssignmentFn) -> Self {
        if assignment.has_splits() {
            RoutingView::SplitTable {
                table: assignment.table().clone(),
                n_tasks: assignment.n_tasks(),
                splits: assignment.splits(),
            }
        } else {
            RoutingView::TablePlusHash {
                table: assignment.table().clone(),
                n_tasks: assignment.n_tasks(),
            }
        }
    }
}

/// A pluggable tuple-routing strategy with an interval-boundary hook.
///
/// `route` is the per-tuple hot path (may mutate internal load estimates,
/// as PKG does). `end_interval` receives the statistics collected during
/// the closing interval and may return a rebalance outcome whose migration
/// plan the engine must then execute.
pub trait Partitioner: Send {
    /// Display name matching the paper's figure legends.
    fn name(&self) -> String;

    /// Current downstream parallelism.
    fn n_tasks(&self) -> usize;

    /// Routes one tuple.
    fn route(&mut self, key: Key) -> TaskId;

    /// Routes a batch of tuples, appending one destination per key to
    /// `out` (cleared first). Must be observationally identical to calling
    /// [`Partitioner::route`] once per key in order — stateful strategies
    /// (PKG's load estimates, shuffle's cursor) advance exactly as they
    /// would per tuple.
    ///
    /// The default delegates to `route`; table-backed implementations
    /// override this with `AssignmentFn::route_batch` so the compiled-table
    /// probe sequence pipelines across keys (see `routing` module docs in
    /// this crate).
    fn route_batch(&mut self, keys: &[Key], out: &mut Vec<TaskId>) {
        out.clear();
        out.reserve(keys.len());
        for &k in keys {
            out.push(self.route(k));
        }
    }

    /// Interval boundary: ingest stats, possibly rebalance.
    fn end_interval(&mut self, stats: IntervalStats) -> Option<RebalanceOutcome>;

    /// Adds a downstream instance (scale-out). Default: unsupported.
    fn add_task(&mut self) -> TaskId {
        unimplemented!("{} does not support scale-out", self.name())
    }

    /// State-placement-preserving scale-out: implementations that own a
    /// routing table pin hash-churned `live` keys to their old location so
    /// physical state placement stays truthful (see
    /// `Rebalancer::scale_out`). Default: plain [`Partitioner::add_task`].
    fn scale_out(&mut self, live: &[Key]) -> TaskId {
        let _ = live;
        self.add_task()
    }

    /// Scale-out with a **pre-placement plan**: adds an instance and
    /// returns `(new_task, moves)`, where each move `(key, holder)` names
    /// a `live` key that now routes to the new instance and the task
    /// currently holding its state. The caller migrates those keys' state
    /// into the new instance inside the scale-out quiescence window
    /// (plan → quiesce → install → resume), so the new slot takes load in
    /// the very interval the decision fired instead of sitting empty
    /// until the next rebalance — the cold-start defect
    /// [`Partitioner::scale_out`]'s pinning trades into.
    ///
    /// Table-backed implementations let hash-churned `live` keys follow
    /// the grown ring to the new slot and report them as moves (the
    /// `add_slot` delta: under consistent hashing churned keys relocate
    /// *only* onto the new slot); keys with explicit table entries stay
    /// put. The default delegates to [`Partitioner::scale_out`] with no
    /// moves — correct for key-oblivious and key-splitting strategies
    /// (shuffle, PKG), whose new instance receives traffic immediately
    /// without any state movement.
    fn scale_out_plan(&mut self, live: &[Key]) -> (TaskId, Vec<(Key, TaskId)>) {
        (self.scale_out(live), Vec::new())
    }

    /// Removes a downstream instance (scale-in). `victim` must be the
    /// highest-numbered task (the engine retires the tail slot, keeping
    /// task ids contiguous); after the call no key may route to it.
    /// Table-backed implementations drop the victim's explicit entries and
    /// shrink the hash ring consistently, pinning any `live` key whose
    /// route would churn between *survivors* so physical state placement
    /// stays truthful — the victim's own state is migrated by the caller
    /// (the engine's drain → retire → re-install protocol, see
    /// `streambal-elastic`). Default: unsupported.
    fn scale_in(&mut self, victim: TaskId, live: &[Key]) {
        let _ = (victim, live);
        unimplemented!("{} does not support scale-in", self.name())
    }

    /// A shippable snapshot of the current routing function.
    fn routing_view(&self) -> RoutingView;

    /// Whether the most recent [`Partitioner::end_interval`] rebalance
    /// was installed as an incremental delta (moves applied in place)
    /// rather than a table swap. When true, the driver may ship sources a
    /// [`RoutingView::TableDelta`] of the outcome's moves instead of a
    /// full [`Partitioner::routing_view`] — the two leave table-view
    /// holders routing identically, because the holder's table and the
    /// partitioner's were equal before the rebalance and receive the same
    /// mutation. Default false: strategies that swap (or don't own a
    /// table) always need the full view.
    fn last_install_was_delta(&self) -> bool {
        false
    }

    /// Whether the strategy preserves key-grouping semantics (all tuples
    /// of a key on one worker). PKG does not — stateful aggregation then
    /// needs partial/merge topology support, and joins are impossible.
    fn preserves_key_semantics(&self) -> bool {
        true
    }

    /// A worker died without draining: pin every explicit table entry
    /// routed to `dead` onto a surviving task and return the applied
    /// `(key, new destination)` moves, for shipping to sources as a
    /// delta. Survivors are chosen by [`crate::routing::next_live`] from
    /// each key's hash home — the same rule sources use to divert
    /// hash-fallback keys at send time, so every view holder agrees
    /// where the dead slot's traffic lands. The parallelism does **not**
    /// shrink: slot ids stay dense and a later scale-out can re-provision
    /// the slot. `is_dead` must report every currently-dead slot,
    /// `dead` included.
    ///
    /// Default: no routing table to re-pin, no moves — key-oblivious and
    /// key-splitting strategies (shuffle, PKG) route around dead slots
    /// at the source alone.
    fn reroute_dead(
        &mut self,
        dead: TaskId,
        is_dead: &dyn Fn(usize) -> bool,
    ) -> Vec<(Key, TaskId)> {
        let _ = (dead, is_dead);
        Vec::new()
    }

    /// Applies an explicit `(key, destination)` move list to the routing
    /// table (`AssignmentFn::apply_delta` semantics), returning `true`
    /// when the strategy held a table to patch. The rollback path of an
    /// aborted migration uses this to pin the plan's keys back onto the
    /// workers still holding their state; `false` tells the caller the
    /// strategy routes without a table, so there is nothing to undo.
    /// Default: `false`.
    fn apply_moves(&mut self, moves: &[(Key, TaskId)]) -> bool {
        let _ = moves;
        false
    }

    /// Flags `key` as hot, salting it across `replicas` (primary first;
    /// at least two distinct slots). Returns `true` when the strategy
    /// installed the split — after which [`Partitioner::routing_view`]
    /// must carry it — and `false` when it declines. The default
    /// declines: key-oblivious and key-spreading strategies (shuffle,
    /// PKG) already spread every key, so splitting is meaningless for
    /// them, and the split/unsplit protocol op simply no-ops.
    fn split_key(&mut self, key: Key, replicas: &[TaskId]) -> bool {
        let _ = (key, replicas);
        false
    }

    /// Dissolves `key`'s split: the key reverts to whole-key routing and
    /// the caller is responsible for consolidating replica state onto the
    /// key's post-unsplit destination (the engine's unsplit op migrates
    /// every non-primary replica's partial state there). Returns the
    /// replica set that was installed, or `None` when the key was not
    /// split (the default).
    fn unsplit_key(&mut self, key: Key) -> Option<Vec<TaskId>> {
        let _ = key;
        None
    }

    /// The currently split keys with their replica sets, sorted by key.
    /// Default: none.
    fn splits(&self) -> Vec<(Key, Vec<TaskId>)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BalanceParams, RebalanceStrategy, Rebalancer};

    /// A minimal trait impl, checking the default hooks compile and act
    /// as documented.
    struct Fixed(usize);

    impl Partitioner for Fixed {
        fn name(&self) -> String {
            "Fixed".into()
        }

        fn n_tasks(&self) -> usize {
            self.0
        }

        fn route(&mut self, key: Key) -> TaskId {
            TaskId::from(key.raw() as usize % self.0)
        }

        fn end_interval(&mut self, _stats: IntervalStats) -> Option<RebalanceOutcome> {
            None
        }

        fn routing_view(&self) -> RoutingView {
            RoutingView::RoundRobin { n_tasks: self.0 }
        }
    }

    #[test]
    fn default_hooks() {
        let mut p = Fixed(3);
        assert!(p.preserves_key_semantics());
        assert_eq!(p.route(Key(7)), TaskId(1));
        assert!(p.end_interval(IntervalStats::new()).is_none());
        // Split hooks default to declining: no split installs, nothing
        // to dissolve, no splits reported.
        assert!(!p.split_key(Key(1), &[TaskId(0), TaskId(1)]));
        assert_eq!(p.unsplit_key(Key(1)), None);
        assert!(p.splits().is_empty());
    }

    #[test]
    fn default_route_batch_matches_per_key_order() {
        let mut p = Fixed(3);
        let keys: Vec<Key> = (0..50u64).map(Key).collect();
        let mut out = vec![TaskId(7); 4]; // stale content must be cleared
        p.route_batch(&keys, &mut out);
        let expect: Vec<TaskId> = keys.iter().map(|&k| Fixed(3).route(k)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "does not support scale-out")]
    fn default_scale_out_is_unsupported() {
        Fixed(2).scale_out(&[Key(1)]);
    }

    /// The default plan delegates to `scale_out` and pre-places nothing.
    #[test]
    fn default_scale_out_plan_has_no_moves() {
        struct Growable(usize);
        impl Partitioner for Growable {
            fn name(&self) -> String {
                "Growable".into()
            }
            fn n_tasks(&self) -> usize {
                self.0
            }
            fn route(&mut self, key: Key) -> TaskId {
                TaskId::from(key.raw() as usize % self.0)
            }
            fn end_interval(&mut self, _stats: IntervalStats) -> Option<RebalanceOutcome> {
                None
            }
            fn add_task(&mut self) -> TaskId {
                self.0 += 1;
                TaskId::from(self.0 - 1)
            }
            fn routing_view(&self) -> RoutingView {
                RoutingView::RoundRobin { n_tasks: self.0 }
            }
        }
        let mut p = Growable(2);
        let (new, moves) = p.scale_out_plan(&[Key(1), Key(2)]);
        assert_eq!(new, TaskId(2));
        assert!(moves.is_empty());
        assert_eq!(p.n_tasks(), 3);
    }

    #[test]
    #[should_panic(expected = "does not support scale-in")]
    fn default_scale_in_is_unsupported() {
        Fixed(2).scale_in(TaskId(1), &[Key(1)]);
    }

    /// `of_assignment` collapses to the plain table view unless splits
    /// exist, so non-splitting runs never emit the new variant.
    #[test]
    fn of_assignment_carries_splits_only_when_present() {
        let mut a = crate::routing::AssignmentFn::hash_only(3);
        match RoutingView::of_assignment(&a) {
            RoutingView::TablePlusHash { n_tasks, .. } => assert_eq!(n_tasks, 3),
            v => panic!("expected TablePlusHash, got {v:?}"),
        }
        a.set_split(Key(1), &[TaskId(0), TaskId(2)]);
        match RoutingView::of_assignment(&a) {
            RoutingView::SplitTable {
                n_tasks, splits, ..
            } => {
                assert_eq!(n_tasks, 3);
                assert_eq!(splits, vec![(Key(1), vec![TaskId(0), TaskId(2)])]);
            }
            v => panic!("expected SplitTable, got {v:?}"),
        }
    }

    /// The crate's own Rebalancer is usable through the trait without the
    /// baselines adapter (drivers can depend on core alone).
    #[test]
    fn rebalancer_satisfies_contract_via_view() {
        let r = Rebalancer::new(4, 1, RebalanceStrategy::Mixed, BalanceParams::default());
        let view = RoutingView::TablePlusHash {
            table: r.assignment().table().clone(),
            n_tasks: r.assignment().n_tasks(),
        };
        match view {
            RoutingView::TablePlusHash { table, n_tasks } => {
                assert_eq!(n_tasks, 4);
                assert!(table.is_empty());
            }
            _ => unreachable!(),
        }
    }
}
