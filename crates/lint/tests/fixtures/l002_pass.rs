// Fixture: SAFETY-commented unsafe, including with an attribute and
// extra comment lines between the marker and the block.

pub fn read(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn gated(p: *const u8) -> u8 {
    // SAFETY: fixture — marker above an attribute still counts.
    #[cfg(target_arch = "x86_64")]
    // A hint only; correctness never depends on it.
    unsafe {
        return *p;
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
        0
    }
}
