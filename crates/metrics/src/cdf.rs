//! Exact empirical cumulative distribution functions.
//!
//! Fig. 7 of the paper plots the *cumulative distribution of workload
//! skewness* across task instances and time intervals. Those populations
//! are small (`ND × intervals` ≤ a few thousand points), so an exact CDF —
//! a sorted sample vector — is both simpler and more faithful than a
//! sketch.

/// An exact empirical CDF over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
    dirty: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Builds directly from samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut c = Cdf::new();
        for s in samples {
            c.add(s);
        }
        c
    }

    /// Adds one sample. NaN samples are rejected with a panic — a NaN
    /// skewness always indicates an upstream accounting bug.
    pub fn add(&mut self, sample: f64) {
        assert!(!sample.is_nan(), "NaN sample added to CDF");
        self.sorted.push(sample);
        self.dirty = true;
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            self.dirty = false;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Value at percentile `p ∈ [0,1]` (nearest-rank). Returns `None` when
    /// empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Evenly spaced `(percentile, value)` points for plotting, e.g.
    /// `points(5)` yields the 20/40/60/80/100-percentile series used in the
    /// Fig. 7 reproduction.
    pub fn points(&mut self, n: usize) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(n);
        for i in 1..=n {
            let p = i as f64 / n as f64;
            if let Some(v) = self.percentile(p) {
                out.push((p, v));
            }
        }
        out
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.percentile(0.5), None);
        assert_eq!(c.fraction_below(10.0), 0.0);
        assert_eq!(c.mean(), 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut c = Cdf::from_samples((1..=100).map(|v| v as f64));
        assert_eq!(c.percentile(0.5), Some(50.0));
        assert_eq!(c.percentile(1.0), Some(100.0));
        assert_eq!(c.percentile(0.0), Some(1.0));
        assert_eq!(c.percentile(0.01), Some(1.0));
    }

    #[test]
    fn fraction_below_matches_definition() {
        let mut c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(2.0), 0.5);
        assert_eq!(c.fraction_below(100.0), 1.0);
    }

    #[test]
    fn points_are_monotone() {
        let mut c = Cdf::from_samples((0..1000).map(|v| (v % 37) as f64));
        let pts = c.points(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF values must be non-decreasing");
        }
        assert_eq!(pts.last().unwrap().0, 1.0);
    }

    #[test]
    fn interleaved_add_and_query() {
        let mut c = Cdf::new();
        c.add(5.0);
        assert_eq!(c.percentile(1.0), Some(5.0));
        c.add(1.0);
        assert_eq!(c.percentile(0.5), Some(1.0));
        c.add(9.0);
        assert_eq!(c.percentile(1.0), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Cdf::new().add(f64::NAN);
    }

    #[test]
    fn mean_correct() {
        let c = Cdf::from_samples([2.0, 4.0, 6.0]);
        assert_eq!(c.mean(), 4.0);
    }
}
