//! Property-based tests on the core algorithms' module-level invariants.

use proptest::prelude::*;
use streambal_core::compact::{compact_mixed, CompactStats};
use streambal_core::discretize::{discretize, hlhe_representatives, total_deviation};
use streambal_core::llfd::{llfd, Arena, Criteria};
use streambal_core::{BalanceParams, Key, KeyRecord, LoadSummary, RebalanceInput, TaskId};

fn arb_records(max_tasks: usize) -> impl Strategy<Value = (usize, Vec<KeyRecord>)> {
    (2usize..=max_tasks, 1usize..80).prop_flat_map(|(n_tasks, n_keys)| {
        (
            Just(n_tasks),
            proptest::collection::vec(
                (0u64..500, 0u64..500, 0..n_tasks as u32, 0..n_tasks as u32),
                n_keys,
            ),
        )
            .prop_map(|(n_tasks, raw)| {
                let records = raw
                    .into_iter()
                    .enumerate()
                    .map(|(i, (cost, mem, cur, hash))| KeyRecord {
                        key: Key(i as u64),
                        cost,
                        mem,
                        current: TaskId(cur),
                        hash_dest: TaskId(hash),
                    })
                    .collect();
                (n_tasks, records)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LLFD terminates, assigns everything, and never leaves a task above
    /// `Lmax` when a single key alone does not exceed it (the Theorem 1
    /// regime is a subset of this).
    #[test]
    fn llfd_total_and_conserving((n_tasks, records) in arb_records(5), theta in 0.0f64..0.5) {
        let mut arena = Arena::new(&records, n_tasks, Criteria::HighestCost, |_, r| r.current);
        let before: u64 = records.iter().map(|r| r.cost).sum();
        let cands = arena.drain_overloaded(theta);
        llfd(&mut arena, cands, theta);
        let assign = arena.into_assignment();
        prop_assert_eq!(assign.len(), records.len());
        let mut loads = vec![0u64; n_tasks];
        for (r, d) in records.iter().zip(&assign) {
            prop_assert!(d.index() < n_tasks);
            loads[d.index()] += r.cost;
        }
        prop_assert_eq!(loads.iter().sum::<u64>(), before);
    }

    /// Phase II never drains a task below Lmax's floor unnecessarily:
    /// after draining, every task is ≤ Lmax or has no keys left.
    #[test]
    fn drain_is_bounded((n_tasks, records) in arb_records(5), theta in 0.0f64..0.5) {
        let mut arena = Arena::new(&records, n_tasks, Criteria::HighestCost, |_, r| r.current);
        let mean = arena.mean();
        let _ = arena.drain_overloaded(theta);
        let lmax = (1.0 + theta) * mean;
        for (d, &load) in arena.loads().iter().enumerate() {
            // A task still above Lmax must have been emptied of keys —
            // impossible (load > 0 needs keys), so it must be ≤ Lmax...
            // unless a single remaining key exceeds Lmax by itself is
            // impossible too (drain pops until ≤ Lmax or empty). Hence:
            prop_assert!(
                (load as f64) <= lmax || load == 0,
                "task {d} left at {load} > Lmax {lmax}"
            );
        }
    }

    /// Discretized values are always representatives, and |δ| is bounded
    /// by the largest representative gap (the greedy never lets the
    /// accumulator run away).
    #[test]
    fn discretize_invariants(values in proptest::collection::vec(0u64..5_000, 1..400), r in 0u32..8) {
        let mapped = discretize(&values, r);
        prop_assert_eq!(mapped.len(), values.len());
        let max = values.iter().copied().max().unwrap_or(0);
        let reps = hlhe_representatives(max, r);
        for (&x, &m) in values.iter().zip(&mapped) {
            if x == 0 {
                prop_assert_eq!(m, 0);
            } else {
                prop_assert!(reps.contains(&m), "{m} not a representative of {reps:?}");
            }
        }
        if !reps.is_empty() {
            // Max gap between adjacent representatives bounds the final
            // accumulated deviation, except for mass above y1 (values in
            // (y1, max] each contribute < R).
            let above_y1: i128 = values
                .iter()
                .filter(|&&x| x > reps[0])
                .map(|&x| (x - reps[0]) as i128)
                .sum();
            let max_gap = reps
                .windows(2)
                .map(|w| w[0] - w[1])
                .max()
                .unwrap_or(reps[0]) as i128;
            let dev = total_deviation(&values, &mapped).abs();
            prop_assert!(
                dev <= max_gap + above_y1,
                "|δ|={dev} gap={max_gap} above_y1={above_y1}"
            );
        }
    }

    /// Compact round-trip: record key-count conservation and materialized
    /// load conservation for random inputs and degrees.
    #[test]
    fn compact_conserves((n_tasks, records) in arb_records(4), r in 0u32..6) {
        let stats = CompactStats::build(&records, r);
        let total_keys: usize = stats.records.iter().map(|c| c.count()).sum();
        prop_assert_eq!(total_keys, records.len());
        let input = RebalanceInput { n_tasks, records };
        let out = compact_mixed(&input, &BalanceParams::default(), r);
        let before: u64 = input.records.iter().map(|k| k.cost).sum();
        let after: u64 = out.outcome.loads.loads.iter().sum();
        prop_assert_eq!(before, after);
    }

    /// The balance indicator is scale-invariant in the sense that doubling
    /// every load leaves θ unchanged.
    #[test]
    fn theta_scale_invariant(loads in proptest::collection::vec(1u64..10_000, 2..10)) {
        let a = LoadSummary::new(loads.clone());
        let doubled: Vec<u64> = loads.iter().map(|&l| l * 2).collect();
        let b = LoadSummary::new(doubled);
        prop_assert!((a.max_theta() - b.max_theta()).abs() < 1e-9);
        prop_assert!((a.skewness() - b.skewness()).abs() < 1e-9);
    }
}
