//! Synthetic **Stock** workload (exchange records).
//!
//! The paper's second real dataset: 3 days of stock exchange records,
//! over 6 M tuples across 1,036 unique stock IDs, run under a windowed
//! self-join (finding high-frequency players with dense buying and selling
//! behavior). Its signature property per the paper: more abrupt and
//! unexpected bursts on certain keys — the opposite temporal profile of
//! Social.
//!
//! The synthetic substitution: a mild Zipf base load over 1,036 IDs, plus
//! a burst process — each interval a small random set of stocks trades at
//! `burst_factor ×` its base rate (earnings announcements, halts, memes),
//! and bursts decay after a random 1–3 intervals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use streambal_core::{IntervalStats, Key};

use crate::zipf::{CostModel, ZipfGen};

/// Number of distinct stock IDs in the paper's dataset.
pub const PAPER_N_STOCKS: usize = 1_036;

/// The bursty stock-exchange workload.
#[derive(Debug, Clone)]
pub struct StockWorkload {
    base: Vec<u64>,
    /// Remaining burst intervals per key (0 = not bursting).
    burst_left: Vec<u8>,
    burst_factor: u64,
    bursts_per_interval: usize,
    cost: CostModel,
    rng: StdRng,
    interval: u64,
}

impl StockWorkload {
    /// Paper-scale defaults: 1,036 stocks, ~2 M tuples per day-interval,
    /// 2% of stocks bursting at 20× per interval.
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(PAPER_N_STOCKS, 2_000_000, 20, 20, seed)
    }

    /// Creates the workload: `n_stocks` keys with `tuples` base tuples per
    /// interval, `bursts_per_interval` new bursts each at
    /// `burst_factor ×` base rate.
    pub fn new(
        n_stocks: usize,
        tuples: u64,
        bursts_per_interval: usize,
        burst_factor: u64,
        seed: u64,
    ) -> Self {
        assert!(n_stocks >= 2, "need at least two stocks");
        // Mild skew: trading volume is concentrated but not extreme.
        let gen = ZipfGen::new(n_stocks, 0.6);
        StockWorkload {
            base: gen.expected_freqs(tuples),
            burst_left: vec![0; n_stocks],
            burst_factor: burst_factor.max(1),
            bursts_per_interval,
            cost: CostModel::default(),
            rng: StdRng::seed_from_u64(seed ^ 0x570C4),
            interval: 0,
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Number of stock IDs.
    pub fn n_stocks(&self) -> usize {
        self.base.len()
    }

    /// Current interval index.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Current tuple count of a stock (base or burst).
    pub fn freq(&self, key: Key) -> u64 {
        let i = key.raw() as usize;
        if self.burst_left[i] > 0 {
            self.base[i] * self.burst_factor
        } else {
            self.base[i]
        }
    }

    /// Keys currently bursting (for tests/diagnostics).
    pub fn bursting(&self) -> Vec<Key> {
        self.burst_left
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, _)| Key(i as u64))
            .collect()
    }

    /// Advances one interval: decays ongoing bursts, ignites new ones on
    /// random stocks for 1–3 intervals.
    pub fn advance(&mut self) {
        self.interval += 1;
        for b in &mut self.burst_left {
            *b = b.saturating_sub(1);
        }
        for _ in 0..self.bursts_per_interval {
            let i = self.rng.gen_range(0..self.base.len());
            self.burst_left[i] = self.rng.gen_range(1..=3);
        }
    }

    /// The current interval as aggregated statistics.
    pub fn interval_stats(&self) -> IntervalStats {
        let mut iv = IntervalStats::new();
        for i in 0..self.base.len() {
            let f = self.freq(Key(i as u64));
            if f > 0 {
                iv.observe(
                    Key(i as u64),
                    f,
                    f * self.cost.cost_per_tuple,
                    f * self.cost.state_per_tuple,
                );
            }
        }
        iv
    }

    /// Materializes the interval's tuples, shuffled.
    pub fn tuples(&mut self) -> Vec<Key> {
        let mut out = Vec::new();
        for i in 0..self.base.len() {
            for _ in 0..self.freq(Key(i as u64)) {
                out.push(Key(i as u64));
            }
        }
        for i in (1..out.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_multiply_frequency() {
        let mut w = StockWorkload::new(100, 10_000, 5, 10, 2);
        assert!(w.bursting().is_empty());
        w.advance();
        let bursting = w.bursting();
        assert!(!bursting.is_empty());
        for k in bursting {
            let base = w.base[k.raw() as usize];
            if base > 0 {
                assert_eq!(w.freq(k), base * 10);
            }
        }
    }

    #[test]
    fn bursts_decay() {
        let mut w = StockWorkload::new(50, 1_000, 3, 10, 4);
        w.advance();
        assert!(!w.bursting().is_empty());
        // After 3 more intervals with no new ignitions, all old bursts are
        // gone (each lasts ≤ 3); disable new ignitions to observe decay.
        w.bursts_per_interval = 0;
        for _ in 0..3 {
            w.advance();
        }
        assert!(w.bursting().is_empty());
    }

    #[test]
    fn burst_changes_load_abruptly() {
        // Unlike Social's drift, a burst multiplies a key's frequency in a
        // single interval — the "abrupt and unexpected" profile.
        let mut w = StockWorkload::new(200, 100_000, 10, 20, 6);
        let before: u64 = (0..200u64).map(|k| w.freq(Key(k))).sum();
        w.advance();
        let after: u64 = (0..200u64).map(|k| w.freq(Key(k))).sum();
        assert!(
            after as f64 > before as f64 * 1.2,
            "bursts must add visible mass: {before} → {after}"
        );
    }

    #[test]
    fn paper_scale_dimensions() {
        let w = StockWorkload::paper_scale(1);
        assert_eq!(w.n_stocks(), 1_036);
        let total: u64 = (0..1_036u64).map(|k| w.freq(Key(k))).sum();
        assert!((1_500_000..2_500_000).contains(&total), "total {total}");
    }

    #[test]
    fn stats_and_tuples_agree() {
        let mut w = StockWorkload::new(64, 5_000, 4, 8, 3);
        w.advance();
        let iv = w.interval_stats();
        let tuples = w.tuples();
        let total_stats: u64 = iv.iter().map(|(_, s)| s.freq).sum();
        assert_eq!(tuples.len() as u64, total_stats);
    }

    #[test]
    fn deterministic() {
        let mut a = StockWorkload::new(64, 5_000, 4, 8, 3);
        let mut b = StockWorkload::new(64, 5_000, 4, 8, 3);
        a.advance();
        b.advance();
        assert_eq!(a.bursting(), b.bursting());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_domain_panics() {
        StockWorkload::new(1, 100, 1, 2, 1);
    }
}
