//! The worker (downstream task instance) thread loop.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};
use streambal_core::{IntervalStats, TaskId};
use streambal_metrics::{Counter, Histogram};

use crate::message::{Message, WorkerEvent};
use crate::operator::Operator;
use crate::tuple::Tuple;

/// Everything one worker thread needs.
pub(crate) struct WorkerCtx {
    pub id: TaskId,
    pub rx: Receiver<Message>,
    pub events: Sender<WorkerEvent>,
    pub collector: Option<Sender<Tuple>>,
    pub op: Box<dyn Operator>,
    /// Busy-work iterations per tuple (CPU saturation control).
    pub spin_work: u32,
    /// State window `w` in intervals.
    pub window: u64,
    /// Shared processed-tuples counter (throughput sampling).
    pub processed_counter: Arc<Counter>,
    /// Engine start instant (latency reference).
    pub epoch: Instant,
    /// The interval this worker joins at (0 for initial workers; the
    /// current interval for scale-out spawns, so window eviction does not
    /// misfire on its early state).
    pub start_interval: u64,
}

/// Calibrated busy work: `iters` dependent multiply-xor rounds. The
/// optimizer cannot elide it (the result feeds a `black_box`), so one unit
/// costs the same nanoseconds everywhere — this is how the engine
/// emulates the paper's per-tuple CPU cost.
#[inline]
pub(crate) fn spin(iters: u32) -> u64 {
    let mut x = 0x9E37_79B9u64 | 1;
    for i in 0..iters {
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (i as u64);
    }
    std::hint::black_box(x)
}

/// Runs the worker until `Shutdown`.
pub(crate) fn run_worker(mut ctx: WorkerCtx) {
    let mut stats = IntervalStats::new();
    let mut latency = Box::new(Histogram::new());
    let mut processed = 0u64;
    let mut current_interval = ctx.start_interval;
    // Reusable emit closure target: forward to the collector if present.
    let collector = ctx.collector.clone();
    let mut emit = move |t: Tuple| {
        if let Some(c) = &collector {
            // The collector channel is bounded: a slow merger backpressures
            // workers, the PKG max-pending effect.
            let _ = c.send(t);
        }
    };

    while let Ok(msg) = ctx.rx.recv() {
        match msg {
            Message::Tuple(t) => {
                spin(ctx.spin_work);
                let mem = ctx.op.process(&t, current_interval, &mut emit);
                stats.observe(t.key, 1, ctx.spin_work as u64 + 1, mem);
                let now_us = ctx.epoch.elapsed().as_micros() as u64;
                latency.record(now_us.saturating_sub(t.emitted_us));
                processed += 1;
                ctx.processed_counter.incr();
            }
            Message::StatsRequest { interval } => {
                ctx.op.flush(&mut emit);
                let out = std::mem::take(&mut stats);
                let _ = ctx.events.send(WorkerEvent::Stats {
                    worker: ctx.id,
                    interval,
                    stats: out,
                });
                current_interval = interval + 1;
                // Keep the last `window` intervals: evict everything
                // strictly older than (closed_interval + 1 − w).
                let oldest_keep = (interval + 1).saturating_sub(ctx.window);
                ctx.op.evict_before(oldest_keep);
            }
            Message::MigrateOut { epoch, moves } => {
                let mut states = Vec::with_capacity(moves.len());
                for (key, to) in moves {
                    let blob = ctx.op.extract(key).unwrap_or_default();
                    states.push((key, to, blob));
                }
                let _ = ctx.events.send(WorkerEvent::StateOut {
                    worker: ctx.id,
                    epoch,
                    states,
                });
            }
            Message::StateInstall { epoch, states } => {
                for (key, blob) in states {
                    if !blob.is_empty() {
                        ctx.op.install(key, blob);
                    }
                }
                let _ = ctx.events.send(WorkerEvent::InstallAck {
                    worker: ctx.id,
                    epoch,
                });
            }
            Message::Shutdown => {
                ctx.op.flush(&mut emit);
                let final_states = ctx.op.drain();
                let _ = ctx.events.send(WorkerEvent::Drained {
                    worker: ctx.id,
                    final_states,
                    processed,
                    latency,
                });
                return;
            }
        }
    }
    // Channel closed without Shutdown (engine dropped): exit quietly.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::WordCountOp;
    use crossbeam::channel::unbounded;
    use streambal_core::Key;

    fn spawn_worker(
        window: u64,
    ) -> (
        Sender<Message>,
        Receiver<WorkerEvent>,
        std::thread::JoinHandle<()>,
    ) {
        let (tx, rx) = unbounded();
        let (etx, erx) = unbounded();
        let ctx = WorkerCtx {
            id: TaskId(0),
            rx,
            events: etx,
            collector: None,
            op: Box::new(WordCountOp::new()),
            spin_work: 4,
            window,
            processed_counter: Arc::new(Counter::new()),
            epoch: Instant::now(),
            start_interval: 0,
        };
        let h = std::thread::spawn(move || run_worker(ctx));
        (tx, erx, h)
    }

    #[test]
    fn processes_and_reports_stats() {
        let (tx, erx, h) = spawn_worker(5);
        for _ in 0..10 {
            tx.send(Message::Tuple(Tuple::keyed(Key(1)))).unwrap();
        }
        tx.send(Message::StatsRequest { interval: 0 }).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Stats {
                interval, stats, ..
            } => {
                assert_eq!(interval, 0);
                let s = stats.get(Key(1)).unwrap();
                assert_eq!(s.freq, 10);
                assert_eq!(s.cost, 50); // (spin_work + 1) · freq
                assert_eq!(s.mem, 80);
            }
            other => panic!("unexpected {other:?}"),
        }
        tx.send(Message::Shutdown).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Drained {
                processed,
                final_states,
                ..
            } => {
                assert_eq!(processed, 10);
                assert_eq!(final_states.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn migrate_out_then_install_roundtrip() {
        let (tx_a, erx_a, ha) = spawn_worker(5);
        let (tx_b, erx_b, hb) = spawn_worker(5);
        // Worker A accumulates state for key 9.
        for _ in 0..4 {
            tx_a.send(Message::Tuple(Tuple::keyed(Key(9)))).unwrap();
        }
        tx_a.send(Message::MigrateOut {
            epoch: 1,
            moves: vec![(Key(9), TaskId(1))],
        })
        .unwrap();
        let states = match erx_a.recv().unwrap() {
            WorkerEvent::StateOut { states, epoch, .. } => {
                assert_eq!(epoch, 1);
                states
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(states.len(), 1);
        // Forward to worker B.
        tx_b.send(Message::StateInstall {
            epoch: 1,
            states: states.into_iter().map(|(k, _, b)| (k, b)).collect(),
        })
        .unwrap();
        assert!(matches!(
            erx_b.recv().unwrap(),
            WorkerEvent::InstallAck { epoch: 1, .. }
        ));
        // B now owns the counts: drain and decode.
        tx_b.send(Message::Shutdown).unwrap();
        match erx_b.recv().unwrap() {
            WorkerEvent::Drained { final_states, .. } => {
                assert_eq!(final_states.len(), 1);
                let (k, blob) = &final_states[0];
                assert_eq!(*k, Key(9));
                let total: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
                assert_eq!(total, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        tx_a.send(Message::Shutdown).unwrap();
        let _ = erx_a.recv();
        ha.join().unwrap();
        hb.join().unwrap();
    }

    #[test]
    fn window_eviction_after_stats() {
        let (tx, erx, h) = spawn_worker(1); // keep only current interval
        tx.send(Message::Tuple(Tuple::keyed(Key(5)))).unwrap();
        tx.send(Message::StatsRequest { interval: 0 }).unwrap();
        let _ = erx.recv();
        // Interval 1: nothing for key 5; window=1 evicts interval 0 state.
        tx.send(Message::StatsRequest { interval: 1 }).unwrap();
        let _ = erx.recv();
        tx.send(Message::Shutdown).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Drained { final_states, .. } => {
                assert!(final_states.is_empty(), "state must be evicted");
            }
            other => panic!("unexpected {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn spin_is_not_optimized_away() {
        let t0 = Instant::now();
        for _ in 0..1000 {
            spin(1000);
        }
        assert!(t0.elapsed().as_nanos() > 1000, "spin must consume time");
    }
}
