// Fixture: intrinsics under cfg(target_arch) gates, at item and
// expression position.

#[cfg(target_arch = "x86_64")]
pub fn warm(p: *const i8) {
    // SAFETY: fixture — prefetch has no architectural effect.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p);
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub fn warm(_p: *const i8) {}

pub fn inline_gate(p: *const i8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: fixture — gated expression block.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<0>(p);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}
