//! Rule-by-rule fixture tests (one passing and one violating file per
//! rule) plus the live-workspace check: the repository this lint ships
//! in must itself lint clean.

use std::path::PathBuf;

use streambal_lint::rules::{lint_bench_results, scan_source, FileClass};
use streambal_lint::walk::{classify, lint_workspace};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name)).expect("fixture readable")
}

/// All source rules active: the class of a `crates/runtime/src` file.
fn full_class() -> FileClass {
    FileClass {
        panic_scope: true,
        data_plane: true,
        swap_allowed: false,
    }
}

fn rules_hit(name: &str) -> Vec<(&'static str, u32)> {
    scan_source(name, &fixture(name), &full_class())
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn l001_flags_every_panic_family_member() {
    assert_eq!(
        rules_hit("l001_violate.rs"),
        vec![("L001", 4), ("L001", 8), ("L001", 12), ("L001", 16)]
    );
}

#[test]
fn l001_pass_shapes_stay_clean() {
    assert_eq!(rules_hit("l001_pass.rs"), vec![]);
}

#[test]
fn l002_flags_bare_unsafe() {
    assert_eq!(rules_hit("l002_violate.rs"), vec![("L002", 4)]);
}

#[test]
fn l002_safety_comments_pass() {
    assert_eq!(rules_hit("l002_pass.rs"), vec![]);
}

#[test]
fn l003_flags_whitelist_escape() {
    assert_eq!(rules_hit("l003_violate.rs"), vec![("L003", 4)]);
}

#[test]
fn l003_docs_strings_and_tests_pass() {
    assert_eq!(rules_hit("l003_pass.rs"), vec![]);
}

#[test]
fn l003_whitelisted_file_is_exempt() {
    let class = FileClass {
        swap_allowed: true,
        ..full_class()
    };
    let vs = scan_source("l003_violate.rs", &fixture("l003_violate.rs"), &class);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l004_flags_plain_batch_sends() {
    assert_eq!(rules_hit("l004_violate.rs"), vec![("L004", 4), ("L004", 8)]);
}

#[test]
fn l004_weighted_control_annotated_and_test_sends_pass() {
    assert_eq!(rules_hit("l004_pass.rs"), vec![]);
}

#[test]
fn l005_unknown_key_is_flagged() {
    let (vs, checked) = lint_bench_results(&fixture_path("l005_violate"));
    assert_eq!(checked, 2);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, "L005");
    assert!(vs[0].msg.contains("blorbo_index"), "{}", vs[0].msg);
}

#[test]
fn l005_classified_keys_pass() {
    let (vs, checked) = lint_bench_results(&fixture_path("l005_pass"));
    assert_eq!(checked, 3);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l006_flags_ungated_intrinsics() {
    assert_eq!(rules_hit("l006_violate.rs"), vec![("L006", 6)]);
}

#[test]
fn l006_gated_intrinsics_pass() {
    assert_eq!(rules_hit("l006_pass.rs"), vec![]);
}

#[test]
fn l007_flags_per_event_recording_on_the_data_plane() {
    assert_eq!(
        rules_hit("l007_violate.rs"),
        vec![("L007", 5), ("L007", 10)]
    );
}

#[test]
fn l007_batch_granularity_ledger_annotated_and_test_sites_pass() {
    assert_eq!(rules_hit("l007_pass.rs"), vec![]);
}

#[test]
fn l000_malformed_allows_are_flagged() {
    let no_reason = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(panic)\n    x.unwrap()\n}\n";
    let vs = scan_source("inline.rs", no_reason, &full_class());
    // The reason-less annotation is malformed AND does not suppress.
    assert!(vs.iter().any(|v| v.rule == "L000"), "{vs:?}");
    assert!(vs.iter().any(|v| v.rule == "L001"), "{vs:?}");

    let unknown = "// lint: allow(everything, reason = \"nope\")\nfn f() {}\n";
    let vs = scan_source("inline.rs", unknown, &full_class());
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].rule, "L000");
}

#[test]
fn allow_scope_ends_with_the_statement() {
    let src = "fn f(a: Option<u32>, b: Option<u32>) -> u32 {\n\
               \x20   // lint: allow(panic, reason = \"first statement only\")\n\
               \x20   let x = a.unwrap();\n\
               \x20   x + b.unwrap()\n\
               }\n";
    let vs = scan_source("inline.rs", src, &full_class());
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!((vs[0].rule, vs[0].line), ("L001", 4));
}

#[test]
fn classify_scopes_rules_by_path() {
    let rt = classify("crates/runtime/src/engine.rs").expect("scanned");
    assert!(rt.panic_scope && rt.data_plane && !rt.swap_allowed);
    let core = classify("crates/core/src/llfd.rs").expect("scanned");
    assert!(core.panic_scope && !core.data_plane && !core.swap_allowed);
    let trace = classify("crates/trace/src/lib.rs").expect("scanned");
    assert!(trace.panic_scope && !trace.data_plane && !trace.swap_allowed);
    let resync = classify("crates/core/src/routing.rs").expect("scanned");
    assert!(resync.swap_allowed);
    let t = classify("tests/cross_partitioner.rs").expect("scanned");
    assert!(!t.panic_scope && t.swap_allowed);
    let bench = classify("crates/bench/src/json.rs").expect("scanned");
    assert!(!bench.panic_scope && !bench.data_plane);
    assert!(classify("crates/lint/tests/fixtures/l001_violate.rs").is_none());
}

/// The acceptance gate: the workspace this crate ships in lints clean.
/// This is the same scan CI runs as a blocking step.
#[test]
fn live_workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root);
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "walker found too few files");
    assert!(report.metrics_checked > 500, "L005 checked too few keys");
}
