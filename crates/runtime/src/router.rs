//! The source-side router: a materialized [`RoutingView`].

use streambal_core::{AssignmentFn, Key, RoutingView, TaskId};

/// Evaluates a routing view per tuple on the source thread.
///
/// For [`RoutingView::TablePlusHash`] this is exactly Eq. 1: a table probe
/// with a consistent-hash fallback (the ring is rebuilt deterministically
/// from `n_tasks`, so every holder of the view routes identically). For
/// PKG it keeps local load estimates; for shuffle, a round-robin cursor.
#[derive(Debug)]
pub enum SourceRouter {
    /// Mixed table + hash (core strategies, Readj, plain hash).
    Assignment(AssignmentFn),
    /// PKG power-of-two-choices with local estimates.
    TwoChoice {
        /// Slot count.
        n: usize,
        /// Local per-slot load estimates (tuples routed).
        est: Vec<u64>,
    },
    /// Round-robin.
    RoundRobin {
        /// Slot count.
        n: usize,
        /// Next slot.
        next: usize,
    },
}

impl SourceRouter {
    /// Materializes a view.
    ///
    /// # Panics
    /// Panics on [`RoutingView::TableDelta`]: a delta is an update to an
    /// existing table view, not a materializable starting point — fresh
    /// routers (startup, retire re-homing) must receive a full view.
    pub fn from_view(view: RoutingView) -> Self {
        match view {
            RoutingView::TablePlusHash { table, n_tasks } => {
                SourceRouter::Assignment(AssignmentFn::with_table(n_tasks, table))
            }
            RoutingView::SplitTable {
                table,
                n_tasks,
                splits,
            } => {
                let mut a = AssignmentFn::with_table(n_tasks, table);
                a.set_splits(splits);
                SourceRouter::Assignment(a)
            }
            RoutingView::TwoChoice { n_tasks } => SourceRouter::TwoChoice {
                n: n_tasks,
                est: vec![0; n_tasks],
            },
            RoutingView::RoundRobin { n_tasks } => SourceRouter::RoundRobin {
                n: n_tasks,
                next: 0,
            },
            RoutingView::TableDelta { .. } => {
                // lint: allow(panic, reason = "documented, tested contract:
                // a delta cannot seed a router, and routing tuples through a
                // fabricated empty table would silently misdeliver every key")
                panic!("a TableDelta updates an existing table view; it cannot seed a router")
            }
        }
    }

    /// Replaces the routing function, preserving PKG's local estimates
    /// where slot counts allow. A [`RoutingView::TableDelta`] is applied
    /// in place on the held table (`O(moves)`, no rebuild) — the
    /// controller only ships one when this router already holds the
    /// matching table view (see `Partitioner::last_install_was_delta`).
    ///
    /// # Panics
    /// Panics when a delta arrives against a non-table router or a
    /// different slot count — both mean the controller and source views
    /// have diverged, which must never be routed through silently.
    pub fn update(&mut self, view: RoutingView) {
        match (&mut *self, view) {
            (SourceRouter::TwoChoice { n, est }, RoutingView::TwoChoice { n_tasks }) => {
                est.resize(n_tasks, 0);
                *n = n_tasks;
            }
            (SourceRouter::Assignment(a), RoutingView::TableDelta { n_tasks, moves }) => {
                assert_eq!(
                    a.n_tasks(),
                    n_tasks,
                    "table delta against a mismatched ring"
                );
                a.apply_delta(moves);
            }
            // Any other delta pairing falls through to from_view, which
            // panics with the diagnosis; full views simply re-materialize.
            (_, view) => *self = SourceRouter::from_view(view),
        }
    }

    /// Routes one key.
    #[inline]
    pub fn route(&mut self, key: Key) -> TaskId {
        match self {
            SourceRouter::Assignment(a) => a.route(key),
            SourceRouter::TwoChoice { n, est } => {
                let (a, b) = streambal_hashring::two_choices(key.raw(), *n);
                let d = if est[a] <= est[b] { a } else { b };
                est[d] += 1;
                TaskId::from(d)
            }
            SourceRouter::RoundRobin { n, next } => {
                let d = *next;
                *next = (*next + 1) % *n;
                TaskId::from(d)
            }
        }
    }

    /// Routes a batch of keys, appending one destination per key to `out`
    /// (cleared first). Observationally identical to routing each key in
    /// order with [`SourceRouter::route`]; the table+hash variant uses the
    /// compiled-table batch path so the probe sequence pipelines across
    /// the channel batch (see `streambal_core::routing` docs).
    pub fn route_batch(&mut self, keys: &[Key], out: &mut Vec<TaskId>) {
        match self {
            SourceRouter::Assignment(a) => a.route_batch(keys, out),
            SourceRouter::TwoChoice { n, est } => {
                out.clear();
                out.reserve(keys.len());
                for &k in keys {
                    let (a, b) = streambal_hashring::two_choices(k.raw(), *n);
                    let d = if est[a] <= est[b] { a } else { b };
                    est[d] += 1;
                    out.push(TaskId::from(d));
                }
            }
            SourceRouter::RoundRobin { n, next } => {
                out.clear();
                out.reserve(keys.len());
                for _ in keys {
                    out.push(TaskId::from(*next));
                    *next = (*next + 1) % *n;
                }
            }
        }
    }

    /// Current slot count.
    pub fn n_tasks(&self) -> usize {
        match self {
            SourceRouter::Assignment(a) => a.n_tasks(),
            SourceRouter::TwoChoice { n, .. } | SourceRouter::RoundRobin { n, .. } => *n,
        }
    }

    /// Routing-table shape for the flight recorder's per-interval
    /// `RouterSnapshot`: `(live entries, tombstone debris)` of the
    /// compiled table. Table-less routers (PKG, shuffle) report
    /// `(0, 0)` — they have no table to grow or fragment.
    pub fn table_stats(&self) -> (usize, usize) {
        match self {
            SourceRouter::Assignment(a) => {
                let c = a.compiled();
                (c.len(), c.occupied().saturating_sub(c.len()))
            }
            SourceRouter::TwoChoice { .. } | SourceRouter::RoundRobin { .. } => (0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streambal_core::RoutingTable;

    #[test]
    fn table_plus_hash_matches_assignment_fn() {
        let mut table = RoutingTable::new();
        table.insert(Key(3), TaskId(1));
        let mut r = SourceRouter::from_view(RoutingView::TablePlusHash {
            table: table.clone(),
            n_tasks: 4,
        });
        let reference = AssignmentFn::with_table(4, table);
        for k in 0..200u64 {
            assert_eq!(r.route(Key(k)), reference.route(Key(k)));
        }
    }

    #[test]
    fn deterministic_ring_across_holders() {
        // Two independent materializations of the same view route alike —
        // the property that lets the controller and sources stay in sync.
        let view = RoutingView::TablePlusHash {
            table: RoutingTable::new(),
            n_tasks: 7,
        };
        let mut a = SourceRouter::from_view(view.clone());
        let mut b = SourceRouter::from_view(view);
        for k in 0..500u64 {
            assert_eq!(a.route(Key(k)), b.route(Key(k)));
        }
    }

    #[test]
    fn two_choice_routes_in_choice_set() {
        let mut r = SourceRouter::from_view(RoutingView::TwoChoice { n_tasks: 6 });
        for k in 0..100u64 {
            let (a, b) = streambal_hashring::two_choices(k, 6);
            let d = r.route(Key(k)).index();
            assert!(d == a || d == b);
        }
    }

    #[test]
    fn route_batch_matches_per_key_for_every_view() {
        let mut table = RoutingTable::new();
        for k in 0..50u64 {
            table.insert(Key(k * 3), TaskId((k % 4) as u32));
        }
        let views = [
            RoutingView::TablePlusHash { table, n_tasks: 4 },
            RoutingView::TwoChoice { n_tasks: 4 },
            RoutingView::RoundRobin { n_tasks: 4 },
        ];
        let keys: Vec<Key> = (0..500u64).map(Key).collect();
        for view in views {
            let mut batched = SourceRouter::from_view(view.clone());
            let mut per_key = SourceRouter::from_view(view);
            let mut out = Vec::new();
            batched.route_batch(&keys, &mut out);
            let expect: Vec<TaskId> = keys.iter().map(|&k| per_key.route(k)).collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = SourceRouter::from_view(RoutingView::RoundRobin { n_tasks: 3 });
        let seq: Vec<usize> = (0..6).map(|_| r.route(Key(0)).index()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    /// Applying a delta leaves the router routing exactly like a holder
    /// of the equivalent full view — the controller/source lockstep the
    /// engine's delta shipping relies on.
    #[test]
    fn table_delta_matches_full_view_install() {
        let table: RoutingTable = (0..100u64)
            .map(|k| (Key(k), TaskId((k % 3) as u32)))
            .collect();
        let mut delta_router = SourceRouter::from_view(RoutingView::TablePlusHash {
            table: table.clone(),
            n_tasks: 4,
        });
        // A mixed delta: new pins, re-pins, and move-backs to h(k).
        let reference = AssignmentFn::with_table(4, table.clone());
        let moves: Vec<(Key, TaskId)> = vec![
            (Key(500), TaskId(2)),                    // new entry
            (Key(7), TaskId(3)),                      // re-pin
            (Key(11), reference.hash_route(Key(11))), // move-back
        ];
        delta_router.update(RoutingView::TableDelta {
            n_tasks: 4,
            moves: moves.clone(),
        });
        let mut full = AssignmentFn::with_table(4, table);
        full.apply_delta(moves);
        let mut fresh = SourceRouter::from_view(RoutingView::TablePlusHash {
            table: full.table().clone(),
            n_tasks: 4,
        });
        for k in 0..1_000u64 {
            assert_eq!(delta_router.route(Key(k)), fresh.route(Key(k)), "key {k}");
        }
    }

    /// A split view materializes the split table, a delta applied on top
    /// leaves it intact, and re-materialized holders rotate identically
    /// from the primary (cursors are per-holder, reset on install).
    #[test]
    fn split_view_materializes_and_survives_deltas() {
        let table: RoutingTable = (0..20u64)
            .map(|k| (Key(k), TaskId((k % 4) as u32)))
            .collect();
        let view = RoutingView::SplitTable {
            table,
            n_tasks: 4,
            splits: vec![(Key(100), vec![TaskId(1), TaskId(3)])],
        };
        let mut a = SourceRouter::from_view(view.clone());
        let mut b = SourceRouter::from_view(view);
        // Both holders rotate 1, 3, 1, 3, ... in lockstep.
        for _ in 0..4 {
            assert_eq!(a.route(Key(100)), b.route(Key(100)));
        }
        // A table delta against the split-carrying router applies to the
        // table layer only; the split keeps routing.
        a.update(RoutingView::TableDelta {
            n_tasks: 4,
            moves: vec![(Key(5), TaskId(2))],
        });
        assert_eq!(a.route(Key(5)), TaskId(2));
        let d = a.route(Key(100));
        assert!(d == TaskId(1) || d == TaskId(3), "split lost by delta");
        // A plain table view re-materializes without splits: unsplit.
        a.update(RoutingView::TablePlusHash {
            table: RoutingTable::new(),
            n_tasks: 4,
        });
        if let SourceRouter::Assignment(f) = &a {
            assert!(!f.has_splits());
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    #[should_panic(expected = "cannot seed a router")]
    fn table_delta_cannot_seed_a_router() {
        SourceRouter::from_view(RoutingView::TableDelta {
            n_tasks: 2,
            moves: vec![],
        });
    }

    #[test]
    #[should_panic(expected = "mismatched ring")]
    fn table_delta_against_wrong_ring_panics() {
        let mut r = SourceRouter::from_view(RoutingView::TablePlusHash {
            table: RoutingTable::new(),
            n_tasks: 3,
        });
        r.update(RoutingView::TableDelta {
            n_tasks: 4,
            moves: vec![],
        });
    }

    #[test]
    fn table_stats_reports_entries_and_tombstone_debris() {
        let mut pkg = SourceRouter::from_view(RoutingView::TwoChoice { n_tasks: 3 });
        assert_eq!(pkg.table_stats(), (0, 0), "table-less routers report zero");
        let _ = pkg.route(Key(1));

        let table: RoutingTable = (0..20u64)
            .map(|k| (Key(k), TaskId((k % 3) as u32)))
            .collect();
        let mut r = SourceRouter::from_view(RoutingView::TablePlusHash { table, n_tasks: 3 });
        assert_eq!(r.table_stats().0, 20);
        // Moving a key back to its hash home deletes its table entry,
        // shrinking the live count (and possibly leaving a tombstone).
        let home = match &r {
            SourceRouter::Assignment(a) => a.hash_route(Key(5)),
            _ => unreachable!(),
        };
        r.update(RoutingView::TableDelta {
            n_tasks: 3,
            moves: vec![(Key(5), home)],
        });
        assert_eq!(r.table_stats().0, 19);
    }

    #[test]
    fn update_preserves_pkg_estimates() {
        let mut r = SourceRouter::from_view(RoutingView::TwoChoice { n_tasks: 2 });
        for _ in 0..10 {
            r.route(Key(1));
        }
        r.update(RoutingView::TwoChoice { n_tasks: 3 });
        if let SourceRouter::TwoChoice { est, .. } = &r {
            assert_eq!(est.iter().sum::<u64>(), 10, "estimates preserved");
            assert_eq!(est.len(), 3);
        } else {
            panic!("wrong variant");
        }
    }
}
