//! The routing table `A` and the mixed assignment function `F` (Eq. 1).
//!
//! # Hot-path design: compiled table + batched routing
//!
//! Routing is the one operation executed *per tuple*; everything else in
//! the framework runs per interval. Two structural decisions keep it fast:
//!
//! 1. **The table is compiled, not probed.** [`RoutingTable`] stays a
//!    `FxHashMap` — the right shape for the rebalance algorithms, which
//!    insert/remove entries incrementally — but the read side never touches
//!    it. Every table mutation rebuilds a [`CompiledTable`]: the entries
//!    frozen into a flat, power-of-two, open-addressed slot array (≤ 50%
//!    load factor, linear probing) indexed by the ring's own avalanche
//!    primitive ([`streambal_hashring::mix64`] — see the `CompiledTable`
//!    docs for why a full avalanche, not the raw Fx multiply, is
//!    required). A lookup is one short hash, one mask, and on average
//!    about one slot read on a contiguous, bounds-check-free cache line —
//!    no control-byte metadata, no bucket machinery. Rebuilds cost
//!    `O(N_A)` once per routing-view swap (at most once per interval,
//!    `N_A ≤ Amax`), which is noise next to the millions of per-tuple
//!    lookups between swaps.
//!
//! 2. **Routing is batched.** [`AssignmentFn::route_batch`] routes a slice
//!    of keys per call. Callers (the engine's source loop, the simulator's
//!    interval loop) amortize dispatch and let the compiler pipeline the
//!    hash/probe sequence across independent keys instead of paying a call
//!    and a branch-misprediction window per tuple. The same shape is what a
//!    future sharded/async data plane needs: hand a *batch* to a channel,
//!    not a tuple.
//!
//! The `benches/routing.rs` bench in `streambal-bench` measures both
//! levers against the per-tuple `FxHashMap` probe they replaced and writes
//! the numbers to `bench_results/routing.json`.

use streambal_hashring::{mix64, FxHashMap, HashRing};

use crate::key::{Key, TaskId};

/// Sentinel marking an empty [`CompiledTable`] slot. Destinations are task
/// indices `0..N_D` with `N_D` bounded far below `u32::MAX` (task-id
/// construction panics past `u32`), so the sentinel can never collide with
/// a real destination.
const EMPTY_SLOT: u32 = u32::MAX;

/// A [`RoutingTable`] frozen into a flat open-addressed array for the
/// per-tuple hot path.
///
/// Immutable by construction: build once with [`CompiledTable::build`]
/// whenever the authoritative table changes, then serve unlimited lookups.
/// Slots hold `(key, dest)` pairs in a power-of-two array at ≤ 50% load
/// factor with linear probing, indexed by the low bits of [`mix64`] — the
/// ring's avalanche primitive, one multiply cheaper than the `FxHashMap`
/// probe hash it replaces. The avalanche is load-bearing: indexing by the
/// raw Fx *multiply* alone clusters dense sequential key domains (the
/// three-distance effect pushes measured probe chains from ~1.3 to ~4.4
/// slots at `Amax = 3000`), and dense integer keys are exactly what the
/// workloads produce.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTable {
    /// `(key, dest)` slots; `dest == EMPTY_SLOT` marks a free slot. Always
    /// at least one slot (and under 50% full), so probe loops terminate
    /// without a length check.
    slots: Box<[(u64, u32)]>,
    /// Number of live entries.
    len: usize,
}

impl Default for CompiledTable {
    /// An empty table: a single empty slot, so lookups skip the emptiness
    /// branch entirely.
    fn default() -> Self {
        CompiledTable {
            slots: vec![(0u64, EMPTY_SLOT); 1].into_boxed_slice(),
            len: 0,
        }
    }
}

impl CompiledTable {
    /// Freezes `table` into a flat probe array.
    pub fn build(table: &RoutingTable) -> Self {
        let len = table.len();
        if len == 0 {
            return CompiledTable::default();
        }
        // ≤ 50% load factor keeps expected probe chains around one slot.
        let cap = (len * 2).next_power_of_two();
        let mut slots = vec![(0u64, EMPTY_SLOT); cap].into_boxed_slice();
        let mask = cap - 1;
        for (k, d) in table.iter() {
            let mut i = mix64(k.raw()) as usize & mask;
            while slots[i].1 != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = (k.raw(), d.0);
        }
        CompiledTable { slots, len }
    }

    /// Number of compiled entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are compiled in.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the explicit destination for `key`, if present.
    ///
    /// `inline(always)`: this is the per-tuple hot path, and the probe
    /// loop is a handful of instructions. Without the annotation the
    /// inliner has been observed to leave it (or its `route` caller) as a
    /// per-key call inside non-inlined `route_batch` instantiations,
    /// costing ~40% of the batched win.
    #[inline(always)]
    pub fn lookup(&self, key: Key) -> Option<TaskId> {
        let slots = &*self.slots;
        // Deriving the mask from the slice length (rather than a stored
        // field) lets the compiler see `i & mask < slots.len()` and drop
        // the bounds checks from the probe loop.
        let mask = slots.len() - 1;
        let raw = key.raw();
        let mut i = mix64(raw) as usize & mask;
        loop {
            let (k, d) = slots[i];
            if d == EMPTY_SLOT {
                return None;
            }
            if k == raw {
                return Some(TaskId(d));
            }
            i = (i + 1) & mask;
        }
    }
}

/// The explicit routing table `A ⊆ K × D`.
///
/// Holds destinations for "a handful of keys only" (paper §II); every key
/// not present falls through to the hash function. The table does **not**
/// enforce `Amax` itself — the rebalance algorithms are responsible for
/// producing tables within bound, and [`RoutingTable::len`] lets callers
/// audit them — because a hard cap here would silently corrupt an
/// assignment mid-update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTable {
    entries: FxHashMap<Key, TaskId>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Number of entries `N_A`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries (pure hash routing).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the explicit destination for `key`, if present.
    #[inline]
    pub fn get(&self, key: Key) -> Option<TaskId> {
        self.entries.get(&key).copied()
    }

    /// Inserts or replaces an entry, returning the previous destination.
    pub fn insert(&mut self, key: Key, dest: TaskId) -> Option<TaskId> {
        self.entries.insert(key, dest)
    }

    /// Removes an entry ("moves the key back" to its hash destination).
    pub fn remove(&mut self, key: Key) -> Option<TaskId> {
        self.entries.remove(&key)
    }

    /// Iterates entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, TaskId)> + '_ {
        self.entries.iter().map(|(&k, &d)| (k, d))
    }

    /// Entries sorted by key, for deterministic output in tests/logs.
    pub fn sorted_entries(&self) -> Vec<(Key, TaskId)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }
}

impl FromIterator<(Key, TaskId)> for RoutingTable {
    fn from_iter<T: IntoIterator<Item = (Key, TaskId)>>(iter: T) -> Self {
        RoutingTable {
            entries: iter.into_iter().collect(),
        }
    }
}

/// The mixed assignment function `F : K → D` of Eq. 1 — a routing table
/// over a consistent-hash fallback.
///
/// Routing a tuple costs one compiled-table probe plus (on miss) one ring
/// lookup; this is the structure the upstream "tuples router" evaluates per
/// tuple (Fig. 3 / Fig. 5). The authoritative `FxHashMap`-backed
/// [`RoutingTable`] is kept for mutation and inspection, but reads go
/// through the [`CompiledTable`] rebuilt on every table change (see the
/// module docs).
#[derive(Debug, Clone)]
pub struct AssignmentFn {
    table: RoutingTable,
    compiled: CompiledTable,
    ring: HashRing,
}

impl AssignmentFn {
    /// Pure-hash assignment over `n_tasks` downstream instances.
    pub fn hash_only(n_tasks: usize) -> Self {
        AssignmentFn {
            table: RoutingTable::new(),
            compiled: CompiledTable::default(),
            ring: HashRing::new(n_tasks),
        }
    }

    /// Assignment with an explicit initial table.
    pub fn with_table(n_tasks: usize, table: RoutingTable) -> Self {
        AssignmentFn {
            compiled: CompiledTable::build(&table),
            table,
            ring: HashRing::new(n_tasks),
        }
    }

    /// Number of downstream task instances `N_D`.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.ring.slots()
    }

    /// Evaluates `F(k)` (Eq. 1).
    #[inline]
    pub fn route(&self, key: Key) -> TaskId {
        match self.compiled.lookup(key) {
            Some(d) => d,
            None => TaskId::from(self.ring.slot_of(key.raw())),
        }
    }

    /// Evaluates `F(k)` for a batch of keys, filling `out` with one
    /// destination per key (previous contents discarded). One call per
    /// channel batch amortizes dispatch and keeps the probe sequence
    /// pipelined; the resize-then-overwrite shape avoids both a capacity
    /// check per key and (when the caller reuses a same-sized buffer, as
    /// the drivers do) any zero-fill. See module docs.
    #[inline]
    pub fn route_batch(&self, keys: &[Key], out: &mut Vec<TaskId>) {
        out.resize(keys.len(), TaskId(0));
        for (o, &k) in out.iter_mut().zip(keys) {
            // Open-coded `route`: the table probe must stay inline in this
            // loop (see `CompiledTable::lookup`); the ring fallback may be
            // an out-of-line call — a miss pays a binary search anyway.
            *o = match self.compiled.lookup(k) {
                Some(d) => d,
                None => self.hash_route(k),
            };
        }
    }

    /// Evaluates `F(k)` through the authoritative `FxHashMap` instead of
    /// the compiled table. Semantically identical to [`AssignmentFn::route`];
    /// kept as the reference implementation the compiled table is verified
    /// and benchmarked against.
    #[inline]
    pub fn route_via_map(&self, key: Key) -> TaskId {
        match self.table.get(key) {
            Some(d) => d,
            None => TaskId::from(self.ring.slot_of(key.raw())),
        }
    }

    /// Evaluates the hash fallback `h(k)` regardless of the table.
    #[inline]
    pub fn hash_route(&self, key: Key) -> TaskId {
        TaskId::from(self.ring.slot_of(key.raw()))
    }

    /// The current routing table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// The compiled read-side view of the current table.
    pub fn compiled(&self) -> &CompiledTable {
        &self.compiled
    }

    /// Replaces the routing table (the controller broadcasts `F′` in step 3
    /// of the Fig. 5 protocol), returning the old one. Recompiles the
    /// read-side view.
    pub fn swap_table(&mut self, table: RoutingTable) -> RoutingTable {
        let old = std::mem::replace(&mut self.table, table);
        self.compiled = CompiledTable::build(&self.table);
        old
    }

    /// Inserts a single explicit entry. Recompiles the read-side view per
    /// call; bulk changes must use [`AssignmentFn::insert_entries`] or
    /// [`AssignmentFn::swap_table`] to recompile once.
    pub fn insert_entry(&mut self, key: Key, dest: TaskId) {
        self.table.insert(key, dest);
        self.compiled = CompiledTable::build(&self.table);
    }

    /// Inserts many explicit entries with a single recompile (used to pin
    /// hash-churned keys to their physical location during scale-out,
    /// where per-entry recompiles would make pinning quadratic).
    pub fn insert_entries(&mut self, entries: impl IntoIterator<Item = (Key, TaskId)>) {
        let mut changed = false;
        for (k, d) in entries {
            self.table.insert(k, d);
            changed = true;
        }
        if changed {
            self.compiled = CompiledTable::build(&self.table);
        }
    }

    /// Adds a downstream instance (scale-out), returning its id. Existing
    /// table entries are preserved; only hash-routed keys may move, and
    /// only onto the new instance (consistent hashing).
    pub fn add_task(&mut self) -> TaskId {
        TaskId::from(self.ring.add_slot())
    }

    /// Scale-out that preserves physical state placement: adds an
    /// instance, then pins every `live` key whose route churned onto the
    /// new ring slot back to its old destination with an explicit entry,
    /// so routing stays truthful to where state actually sits. Pins are
    /// independent (each key's route depends only on its own entry), so
    /// they are evaluated against the grown ring and inserted as one
    /// batch — a single table recompile regardless of churn size.
    pub fn add_task_pinned(&mut self, live: &[Key]) -> TaskId {
        let old: Vec<TaskId> = live.iter().map(|&k| self.route(k)).collect();
        let new_task = self.add_task();
        let pins: Vec<(Key, TaskId)> = live
            .iter()
            .zip(&old)
            .filter(|&(&k, &old_d)| self.route(k) != old_d)
            .map(|(&k, &old_d)| (k, old_d))
            .collect();
        self.insert_entries(pins);
        new_task
    }

    /// Scale-out that **reports** churn instead of pinning it: adds an
    /// instance and returns `(new_task, moves)` — every `live` key whose
    /// route churned onto the new ring slot, paired with the task that
    /// held it before the slot was added (its current state holder).
    /// The table is untouched: churned keys route to the new slot by
    /// hash, and the caller is responsible for migrating their state
    /// there (the engine's scale-out pre-placement does exactly that
    /// inside the quiescence window). Keys with explicit table entries
    /// never churn, so their placement stays truthful for free.
    ///
    /// This is the dual of [`AssignmentFn::add_task_pinned`]: pinning
    /// keeps routing truthful by suppressing the ring delta, this keeps
    /// it truthful by executing the delta as a migration. Under a
    /// consistent ring the delta moves keys *only* onto the new slot, so
    /// every reported move's destination is the returned task.
    pub fn add_task_with_moves(&mut self, live: &[Key]) -> (TaskId, Vec<(Key, TaskId)>) {
        let old: Vec<TaskId> = live.iter().map(|&k| self.route(k)).collect();
        let new_task = self.add_task();
        let moves: Vec<(Key, TaskId)> = live
            .iter()
            .zip(&old)
            .filter(|&(&k, &old_d)| {
                let now = self.route(k);
                debug_assert!(
                    now == old_d || now == new_task,
                    "ring churn must target the new slot only"
                );
                now != old_d
            })
            .map(|(&k, &old_d)| (k, old_d))
            .collect();
        (new_task, moves)
    }

    /// Scale-in that preserves physical state placement on the
    /// *survivors*: removes the highest-numbered instance from the ring
    /// (the exact inverse of [`AssignmentFn::add_task`] — only the
    /// victim's keys change hash owner), drops every table entry pointing
    /// at the victim (those keys fall back to their shrunk-ring hash
    /// destination; the caller is responsible for migrating their state
    /// off the victim, which is exactly what the engine's retire protocol
    /// does), and pins any `live` key that was *not* on the victim but
    /// whose route would nevertheless churn back to its old destination.
    /// With a consistent ring that pin set is empty; it is kept as a
    /// structural guarantee so survivors' placement stays truthful under
    /// any ring behaviour. Returns the retired task id.
    ///
    /// # Panics
    /// Panics if only one task remains.
    pub fn remove_task_pinned(&mut self, live: &[Key]) -> TaskId {
        assert!(self.n_tasks() > 1, "cannot scale in below one task");
        let victim = TaskId::from(self.n_tasks() - 1);
        let old: Vec<TaskId> = live.iter().map(|&k| self.route(k)).collect();
        // Drop entries pointing at the victim *before* shrinking the ring
        // so their keys re-route by hash, and redundant entries (equal to
        // the shrunk-ring hash) never enter the table.
        let stale: Vec<Key> = self
            .table
            .iter()
            .filter(|&(_, d)| d == victim)
            .map(|(k, _)| k)
            .collect();
        for k in stale {
            self.table.remove(k);
        }
        self.ring.remove_slot();
        self.compiled = CompiledTable::build(&self.table);
        let pins: Vec<(Key, TaskId)> = live
            .iter()
            .zip(&old)
            .filter(|&(&k, &old_d)| old_d != victim && self.route(k) != old_d)
            .map(|(&k, &old_d)| (k, old_d))
            .collect();
        self.insert_entries(pins);
        victim
    }

    /// Normalizes the table against the ring: removes entries whose
    /// destination equals the hash destination (they waste table space).
    /// Returns how many entries were dropped.
    pub fn prune_redundant(&mut self) -> usize {
        let ring = &self.ring;
        let before = self.table.len();
        let redundant: Vec<Key> = self
            .table
            .iter()
            .filter(|&(k, d)| TaskId::from(ring.slot_of(k.raw())) == d)
            .map(|(k, _)| k)
            .collect();
        for k in redundant {
            self.table.remove(k);
        }
        let dropped = before - self.table.len();
        if dropped > 0 {
            self.compiled = CompiledTable::build(&self.table);
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_routes_by_hash() {
        let f = AssignmentFn::hash_only(4);
        for raw in 0..100u64 {
            let k = Key(raw);
            assert_eq!(f.route(k), f.hash_route(k));
            assert!(f.route(k).index() < 4);
        }
    }

    #[test]
    fn table_entry_overrides_hash() {
        let mut f = AssignmentFn::hash_only(4);
        let k = Key(7);
        let hash_dest = f.hash_route(k);
        let other = TaskId((hash_dest.0 + 1) % 4);
        let mut t = RoutingTable::new();
        t.insert(k, other);
        f.swap_table(t);
        assert_eq!(f.route(k), other);
        assert_ne!(f.route(k), hash_dest);
    }

    #[test]
    fn swap_returns_old_table() {
        let mut f = AssignmentFn::hash_only(2);
        let mut t = RoutingTable::new();
        t.insert(Key(1), TaskId(0));
        f.swap_table(t.clone());
        let old = f.swap_table(RoutingTable::new());
        assert_eq!(old, t);
        assert!(f.table().is_empty());
    }

    #[test]
    fn prune_drops_no_op_entries() {
        let mut f = AssignmentFn::hash_only(4);
        let k_same = Key(3);
        let same = f.hash_route(k_same);
        let k_diff = Key(4);
        let diff = TaskId((f.hash_route(k_diff).0 + 1) % 4);
        let mut t = RoutingTable::new();
        t.insert(k_same, same); // redundant
        t.insert(k_diff, diff); // real entry
        f.swap_table(t);
        assert_eq!(f.prune_redundant(), 1);
        assert_eq!(f.table().len(), 1);
        assert_eq!(f.route(k_diff), diff);
    }

    #[test]
    fn add_task_preserves_table_entries() {
        let mut f = AssignmentFn::hash_only(3);
        let k = Key(11);
        let pinned = TaskId(1);
        let mut t = RoutingTable::new();
        t.insert(k, pinned);
        f.swap_table(t);
        let new = f.add_task();
        assert_eq!(new, TaskId(3));
        assert_eq!(f.n_tasks(), 4);
        assert_eq!(f.route(k), pinned, "explicit entries survive scale-out");
    }

    #[test]
    fn remove_task_drops_victim_entries_and_keeps_survivor_routes() {
        let mut f = AssignmentFn::hash_only(4);
        let victim = TaskId(3);
        // One entry pinning a key to the victim, one pinning elsewhere.
        let to_victim = Key(100);
        let elsewhere = Key(200);
        let other = TaskId((f.hash_route(elsewhere).0 + 1) % 3); // survivor slot
        let mut t = RoutingTable::new();
        t.insert(to_victim, victim);
        t.insert(elsewhere, other);
        f.swap_table(t);
        let live: Vec<Key> = (0..2_000u64).map(Key).collect();
        let before: Vec<TaskId> = live.iter().map(|&k| f.route(k)).collect();
        assert_eq!(f.remove_task_pinned(&live), victim);
        assert_eq!(f.n_tasks(), 3);
        // The victim entry is gone; the survivor entry is intact.
        assert_eq!(f.table().get(to_victim), None);
        assert_eq!(f.route(elsewhere), other);
        // No key routes to the victim anymore, and every key that was on
        // a survivor stays exactly where it was.
        for (&k, &old) in live.iter().zip(&before) {
            let now = f.route(k);
            assert_ne!(now, victim, "key {k:?} still routed to retired task");
            if old != victim && k != to_victim {
                assert_eq!(now, old, "survivor key {k:?} churned {old:?}→{now:?}");
            }
        }
    }

    #[test]
    fn scale_out_then_remove_task_restores_routes() {
        let mut f = AssignmentFn::hash_only(4);
        let live: Vec<Key> = (0..1_000u64).map(Key).collect();
        let before: Vec<TaskId> = live.iter().map(|&k| f.route(k)).collect();
        f.add_task_pinned(&live);
        f.remove_task_pinned(&live);
        // Pinned scale-out kept every live key in place, so the round
        // trip is the identity on live keys and leaves no stale entries
        // pointing at the removed slot.
        for (&k, &old) in live.iter().zip(&before) {
            assert_eq!(f.route(k), old);
        }
        for (_, d) in f.table().iter() {
            assert!(d.index() < 4);
        }
    }

    #[test]
    #[should_panic(expected = "below one task")]
    fn remove_task_below_one_panics() {
        AssignmentFn::hash_only(1).remove_task_pinned(&[]);
    }

    /// `add_task_with_moves` reports exactly the ring churn: every move
    /// is a live key now routing to the new slot, paired with its old
    /// holder; keys with explicit table entries never move; non-churned
    /// keys keep their routes.
    #[test]
    fn add_task_with_moves_reports_the_ring_delta() {
        let mut f = AssignmentFn::hash_only(4);
        let pinned = Key(7);
        let home = f.route(pinned);
        f.insert_entry(pinned, home); // explicit entry: must not move
        let live: Vec<Key> = (0..2_000u64).map(Key).collect();
        let before: Vec<TaskId> = live.iter().map(|&k| f.route(k)).collect();
        let (new_task, moves) = f.add_task_with_moves(&live);
        assert_eq!(new_task, TaskId(4));
        assert!(!moves.is_empty(), "a 2000-key population must churn");
        let moved: std::collections::HashMap<Key, TaskId> = moves.iter().copied().collect();
        assert!(!moved.contains_key(&pinned), "table entry churned");
        for (&k, &old) in live.iter().zip(&before) {
            let now = f.route(k);
            match moved.get(&k) {
                Some(&holder) => {
                    assert_eq!(now, new_task, "move {k:?} must target the new slot");
                    assert_eq!(holder, old, "move {k:?} must name the old holder");
                }
                None => assert_eq!(now, old, "unmoved key {k:?} churned"),
            }
        }
        // The same population pinned instead: the pin set is exactly the
        // move set (the two scale-out flavours see one ring delta).
        let mut g = AssignmentFn::hash_only(4);
        g.insert_entry(pinned, home);
        let before_pins = g.table().len();
        g.add_task_pinned(&live);
        assert_eq!(g.table().len() - before_pins, moves.len());
    }

    #[test]
    fn routing_table_crud() {
        let mut t = RoutingTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(Key(1), TaskId(2)), None);
        assert_eq!(t.insert(Key(1), TaskId(3)), Some(TaskId(2)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(Key(1)), Some(TaskId(3)));
        assert_eq!(t.remove(Key(1)), Some(TaskId(3)));
        assert_eq!(t.remove(Key(1)), None);
    }

    #[test]
    fn compiled_table_matches_map_on_hits_and_misses() {
        // Adversarial sizes (pow2 boundaries, 1-entry, empty) and dense
        // key domains: compiled lookups must agree with the map exactly.
        for size in [0usize, 1, 2, 3, 255, 256, 257, 3000] {
            let table: RoutingTable = (0..size as u64)
                .map(|k| (Key(k * 3), TaskId((k % 7) as u32)))
                .collect();
            let compiled = CompiledTable::build(&table);
            assert_eq!(compiled.len(), size);
            assert_eq!(compiled.is_empty(), size == 0);
            for raw in 0..(size as u64 * 3 + 100) {
                assert_eq!(
                    compiled.lookup(Key(raw)),
                    table.get(Key(raw)),
                    "size {size}, key {raw}"
                );
            }
        }
    }

    #[test]
    fn route_and_route_via_map_agree() {
        let table: RoutingTable = (0..500u64)
            .map(|k| (Key(k * 2), TaskId((k % 5) as u32)))
            .collect();
        let f = AssignmentFn::with_table(5, table);
        for raw in 0..2_000u64 {
            assert_eq!(f.route(Key(raw)), f.route_via_map(Key(raw)), "key {raw}");
        }
    }

    #[test]
    fn route_batch_matches_per_key() {
        let table: RoutingTable = (0..100u64).map(|k| (Key(k), TaskId(1))).collect();
        let f = AssignmentFn::with_table(4, table);
        let keys: Vec<Key> = (0..777u64).map(Key).collect();
        let mut out = vec![TaskId(9)]; // stale content must be cleared
        f.route_batch(&keys, &mut out);
        assert_eq!(out.len(), keys.len());
        for (&k, &d) in keys.iter().zip(&out) {
            assert_eq!(d, f.route(k));
        }
    }

    #[test]
    fn mutations_recompile_the_read_side() {
        let mut f = AssignmentFn::hash_only(4);
        let k = Key(42);
        let pinned = TaskId((f.hash_route(k).0 + 1) % 4);
        // insert_entry recompiles.
        f.insert_entry(k, pinned);
        assert_eq!(f.route(k), pinned);
        assert_eq!(f.compiled().len(), 1);
        // swap_table recompiles.
        f.swap_table(RoutingTable::new());
        assert_eq!(f.route(k), f.hash_route(k));
        assert!(f.compiled().is_empty());
        // prune_redundant recompiles.
        let mut t = RoutingTable::new();
        t.insert(k, f.hash_route(k)); // redundant entry
        t.insert(Key(7), TaskId((f.hash_route(Key(7)).0 + 1) % 4));
        f.swap_table(t);
        assert_eq!(f.prune_redundant(), 1);
        assert_eq!(f.compiled().len(), 1);
        assert_eq!(f.route(k), f.hash_route(k));
    }

    #[test]
    fn insert_entries_batches_one_recompile() {
        let mut f = AssignmentFn::hash_only(4);
        let pins: Vec<(Key, TaskId)> = (0..100u64)
            .map(Key)
            .map(|k| (k, TaskId((f.hash_route(k).0 + 1) % 4)))
            .collect();
        f.insert_entries(pins.clone());
        assert_eq!(f.compiled().len(), 100);
        for (k, d) in pins {
            assert_eq!(f.route(k), d);
        }
        // Empty batch: no-op, compiled view untouched.
        let before = f.compiled().clone();
        f.insert_entries(std::iter::empty());
        assert_eq!(f.compiled(), &before);
    }

    #[test]
    fn sorted_entries_deterministic() {
        let t: RoutingTable = [
            (Key(5), TaskId(0)),
            (Key(2), TaskId(1)),
            (Key(9), TaskId(0)),
        ]
        .into_iter()
        .collect();
        let keys: Vec<u64> = t.sorted_entries().iter().map(|(k, _)| k.raw()).collect();
        assert_eq!(keys, vec![2, 5, 9]);
    }
}
