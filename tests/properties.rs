//! Property-based tests over the rebalance algorithms' invariants, on
//! randomized workloads (proptest).

use proptest::prelude::*;
use streambal::core::{
    outcome_from_assignment, rebalance, AssignmentFn, BalanceParams, Key, KeyRecord,
    RebalanceInput, RebalanceStrategy, TaskId,
};

/// One step of a randomized hot-key-splitting session against a live
/// assignment: install a split, dissolve one, or route a batch.
#[derive(Debug, Clone)]
enum SplitScript {
    Split(u64, Vec<usize>),
    Unsplit(u64),
    Route(Vec<u64>),
}

/// A randomized split session: `n_tasks` in 2..6, an initial routing
/// delta (so the table/hash layers under the split layer are non-trivial),
/// and an interleaving of split installs (distinct replica slots),
/// unsplits (of keys that may or may not be split), and batch routes.
fn arb_split_run() -> impl Strategy<Value = (usize, Vec<(Key, TaskId)>, Vec<SplitScript>)> {
    (2usize..6).prop_flat_map(|n| {
        let moves = proptest::collection::vec((0u64..50, 0..n as u32), 0..30).prop_map(|v| {
            v.into_iter()
                .map(|(k, t)| (Key(k), TaskId(t)))
                .collect::<Vec<_>>()
        });
        // One op: the discriminant picks the variant (routes weighted
        // double), the remaining fields parameterize it — the vendored
        // proptest has no `prop_oneof`, so unused fields are ignored.
        // Split slots are `len` consecutive task indices mod `n`
        // starting at `start`: distinct by construction, varied in both
        // membership and primary.
        let op = (
            0usize..4,
            0u64..50,
            (0usize..n, 2usize..=n),
            proptest::collection::vec(0u64..60, 0..40),
        )
            .prop_map(move |(d, key, (start, len), batch)| match d {
                0 => SplitScript::Split(key, (0..len).map(|i| (start + i) % n).collect()),
                1 => SplitScript::Unsplit(key),
                _ => SplitScript::Route(batch),
            });
        (Just(n), moves, proptest::collection::vec(op, 1..30))
    })
}

/// A randomized rebalance input: `n_tasks` in 2..6, up to 120 keys with
/// arbitrary costs/memories, current placement consistent with a routing
/// table over a hash assignment.
fn arb_input() -> impl Strategy<Value = RebalanceInput> {
    (2usize..6, 1usize..120).prop_flat_map(|(n_tasks, n_keys)| {
        let rec = (0u64..1_000, 0u64..1_000).prop_map(move |(cost, mem)| (cost, mem));
        (
            Just(n_tasks),
            proptest::collection::vec((rec, 0..n_tasks as u32, 0..n_tasks as u32), n_keys),
        )
            .prop_map(|(n_tasks, raw)| {
                let records = raw
                    .into_iter()
                    .enumerate()
                    .map(|(i, ((cost, mem), cur, hash))| KeyRecord {
                        key: Key(i as u64),
                        cost,
                        mem,
                        current: TaskId(cur),
                        hash_dest: TaskId(hash),
                    })
                    .collect();
                RebalanceInput { n_tasks, records }
            })
    })
}

fn arb_params() -> impl Strategy<Value = BalanceParams> {
    (0.0f64..0.5, 1.0f64..2.0, 0usize..200).prop_map(|(theta_max, beta, table_max)| BalanceParams {
        theta_max,
        beta,
        table_max,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants that must hold for every strategy on every input:
    /// load conservation, in-range assignments, non-redundant tables,
    /// consistent migration accounting.
    #[test]
    fn outcome_invariants(input in arb_input(), params in arb_params()) {
        for strategy in [
            RebalanceStrategy::Mixed,
            RebalanceStrategy::MinTable,
            RebalanceStrategy::MinMig,
            RebalanceStrategy::Simple,
        ] {
            let out = rebalance(&input, strategy, &params);

            // Load conservation.
            let before: u64 = input.records.iter().map(|r| r.cost).sum();
            let after: u64 = out.loads.loads.iter().sum();
            prop_assert_eq!(before, after, "{}: load leaked", strategy.name());

            // Table entries never point at the hash destination.
            for (k, d) in out.table.iter() {
                let rec = input.records.iter().find(|r| r.key == k).unwrap();
                prop_assert_ne!(d, rec.hash_dest, "{}: redundant entry", strategy.name());
            }

            // Migration accounting: cost equals the sum of moved states,
            // and every move starts from the key's true current task.
            let mut bytes = 0u64;
            for m in out.plan.moves() {
                let rec = input.records.iter().find(|r| r.key == m.key).unwrap();
                prop_assert_eq!(m.from, rec.current);
                prop_assert!(m.to.index() < input.n_tasks);
                bytes += m.state_bytes;
            }
            prop_assert_eq!(bytes, out.plan.cost_bytes());

            // Migration fraction within [0, 1].
            prop_assert!((0.0..=1.0).contains(&out.migration_fraction));
        }
    }

    /// With `Amax = 0`, Mixed fully cleans. If the pure-hash assignment is
    /// already within `θmax` (nothing to drain in Phase II), the result is
    /// exactly the hash assignment: empty table, loads = hash loads.
    #[test]
    fn mixed_full_cleaning_restores_hash_when_hash_is_balanced(
        input in arb_input(),
        theta in 0.1f64..1.0,
    ) {
        // Hash-side loads.
        let mut hash_loads = vec![0u64; input.n_tasks];
        for r in &input.records {
            hash_loads[r.hash_dest.index()] += r.cost;
        }
        let total: u64 = hash_loads.iter().sum();
        let mean = total as f64 / input.n_tasks as f64;
        let lmax = (1.0 + theta) * mean;
        prop_assume!(total > 0);
        prop_assume!(hash_loads.iter().all(|&l| (l as f64) <= lmax));

        let params = BalanceParams { theta_max: theta, beta: 1.5, table_max: 0 };
        let out = rebalance(&input, RebalanceStrategy::Mixed, &params);
        prop_assert!(
            out.table.is_empty(),
            "hash was balanced, yet {} table entries remain",
            out.table.len()
        );
        prop_assert_eq!(out.loads.loads.clone(), hash_loads);
        // The plan is exactly the move-backs of parked keys.
        for m in out.plan.moves() {
            let rec = input.records.iter().find(|r| r.key == m.key).unwrap();
            prop_assert_eq!(m.to, rec.hash_dest);
        }
    }

    /// The Simple algorithm achieves the Theorem 1 bound whenever the
    /// premises hold (perfect assignment exists and no key exceeds L̄).
    #[test]
    fn simple_respects_theorem1(n_tasks in 2usize..6, per_task in 2usize..6, unit in 1u64..50) {
        // Construct an input where a perfect assignment trivially exists:
        // n_tasks · per_task keys of identical cost.
        let records: Vec<KeyRecord> = (0..(n_tasks * per_task) as u64)
            .map(|i| KeyRecord {
                key: Key(i),
                cost: unit,
                mem: 1,
                current: TaskId(0),
                hash_dest: TaskId(0),
            })
            .collect();
        let input = RebalanceInput { n_tasks, records };
        let out = rebalance(&input, RebalanceStrategy::Simple, &BalanceParams::default());
        let bound = (1.0 - 1.0 / n_tasks as f64) / 3.0;
        prop_assert!(
            out.achieved_theta <= bound + 1e-9,
            "θ {} > Theorem-1 bound {}",
            out.achieved_theta,
            bound
        );
    }

    /// The split layer's batched/scalar equivalence under arbitrary
    /// split/unsplit interleavings: `route_batch` must be
    /// observationally identical to routing each key in order with
    /// `route` — including split-key cursor rotation, which both paths
    /// advance per occurrence. The reference holder is a clone taken at
    /// batch time, so both start from identical cursor state. Every
    /// destination must stay in range, and a split key's destinations
    /// must stay inside its installed replica set.
    #[test]
    fn split_aware_route_batch_matches_scalar_reference(
        (n_tasks, moves, script) in arb_split_run()
    ) {
        let mut f = AssignmentFn::hash_only(n_tasks);
        f.apply_delta(moves.iter().copied());
        for op in &script {
            match op {
                SplitScript::Split(k, slots) => {
                    let reps: Vec<TaskId> =
                        slots.iter().map(|&s| TaskId(s as u32)).collect();
                    // Slots are a distinct subsequence of 0..n of length
                    // ≥ 2, so the install must be accepted.
                    prop_assert!(f.set_split(Key(*k), &reps));
                }
                SplitScript::Unsplit(k) => {
                    let _ = f.clear_split(Key(*k));
                }
                SplitScript::Route(keys) => {
                    let keys: Vec<Key> = keys.iter().map(|&k| Key(k)).collect();
                    let reference = f.clone();
                    let mut got = Vec::new();
                    f.route_batch(&keys, &mut got);
                    let want: Vec<TaskId> =
                        keys.iter().map(|&k| reference.route(k)).collect();
                    prop_assert_eq!(&got, &want);
                    for (&k, &d) in keys.iter().zip(&got) {
                        prop_assert!(d.index() < n_tasks);
                        if let Some(reps) = f.split_replicas(k) {
                            prop_assert!(reps.contains(&d));
                        }
                    }
                }
            }
        }
    }

    /// outcome_from_assignment is the inverse of any assignment: replaying
    /// the plan over `current` yields exactly the claimed loads.
    #[test]
    fn plan_replay_matches_loads(input in arb_input()) {
        let params = BalanceParams::default();
        let out = rebalance(&input, RebalanceStrategy::Mixed, &params);
        // Replay: start from current, apply moves.
        let mut dest: std::collections::HashMap<Key, TaskId> = input
            .records
            .iter()
            .map(|r| (r.key, r.current))
            .collect();
        for m in out.plan.moves() {
            dest.insert(m.key, m.to);
        }
        let mut loads = vec![0u64; input.n_tasks];
        for r in &input.records {
            loads[dest[&r.key].index()] += r.cost;
        }
        prop_assert_eq!(loads, out.loads.loads.clone());

        // And rebuilding the outcome from the replayed assignment is a
        // fixpoint (same table, empty plan).
        let assign: Vec<TaskId> = input.records.iter().map(|r| dest[&r.key]).collect();
        let out2 = outcome_from_assignment(
            &RebalanceInput {
                n_tasks: input.n_tasks,
                records: input
                    .records
                    .iter()
                    .map(|r| KeyRecord { current: dest[&r.key], ..*r })
                    .collect(),
            },
            &assign,
        );
        prop_assert!(out2.plan.is_empty());
        prop_assert_eq!(out2.table.len(), out.table.len());
    }
}

#[test]
fn proptest_module_loads() {
    // Anchor so `cargo test` lists this integration target even when
    // proptest is filtered out.
}
