//! Property tests pinning the incremental [`CompiledTable`] maintenance
//! path to the fresh-build semantics (proptest), plus a regression test
//! that delta application over heavy tombstone churn preserves the
//! slab's structural invariants.
//!
//! The deterministic core of the equivalence property also lives as a
//! unit test next to the implementation
//! (`crates/core/src/routing.rs::incremental_insert_remove_matches_fresh_build`);
//! these tests drive the same invariants through randomized op
//! sequences, where collision chains, tombstone reuse, and rehash
//! timing vary per case.

use std::collections::BTreeMap;

use proptest::prelude::*;
use streambal::core::{AssignmentFn, CompiledTable, Key, RoutingTable, TaskId};

/// The structural invariants every mutation must preserve:
///
/// * **load factor** — occupied slots (live + tombstoned) never exceed
///   half the capacity, so linear probes always terminate at an empty
///   slot;
/// * **probe termination witness** — at least one genuinely empty slot
///   exists (implied by the load factor for any capacity ≥ 2, asserted
///   separately so a violation reports which side broke);
/// * **size accounting** — `len()` equals the number of live entries
///   the reference model holds.
fn assert_invariants(c: &CompiledTable, model: &BTreeMap<u64, u32>) {
    assert!(
        c.occupied() * 2 <= c.capacity(),
        "load factor violated: {} occupied of {} slots",
        c.occupied(),
        c.capacity()
    );
    assert!(
        c.occupied() < c.capacity(),
        "no empty slot left: probes could spin"
    );
    assert_eq!(c.len(), model.len(), "live-entry count diverged from model");
}

/// Checks `c` against `model` on every key in `domain` — present keys
/// must resolve to the modeled destination, absent keys to `None`.
fn assert_lookups(c: &CompiledTable, model: &BTreeMap<u64, u32>, domain: u64) {
    for k in 0..domain {
        assert_eq!(
            c.lookup(Key(k)),
            model.get(&k).map(|&d| TaskId(d)),
            "lookup diverged for key {k}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of inserts, overwrites, and removes — applied
    /// incrementally from an empty table, through however many rehashes
    /// the sequence provokes — answers every lookup exactly like a
    /// `CompiledTable::build` of the surviving entries. The key domain
    /// is kept small (96) relative to the op count so chains collide,
    /// removes hit live slots, and re-inserts land on tombstones.
    #[test]
    fn incremental_ops_match_fresh_build(
        ops in proptest::collection::vec((0u64..96, 0u32..8), 1..400),
    ) {
        let mut c = CompiledTable::default();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for (k, action) in ops {
            if action == 0 {
                prop_assert_eq!(
                    c.remove(Key(k)),
                    model.remove(&k).map(TaskId),
                    "remove returned the wrong prior destination"
                );
            } else {
                prop_assert_eq!(
                    c.insert(Key(k), TaskId(action)),
                    model.insert(k, action).map(TaskId),
                    "insert returned the wrong prior destination"
                );
            }
            assert_invariants(&c, &model);
        }
        // The surviving entries, built fresh: same answers everywhere.
        let table: RoutingTable = model
            .iter()
            .map(|(&k, &d)| (Key(k), TaskId(d)))
            .collect();
        let fresh = CompiledTable::build(&table);
        prop_assert_eq!(c.len(), fresh.len());
        assert_lookups(&c, &model, 96);
        assert_lookups(&fresh, &model, 96);
    }

    /// `AssignmentFn::apply_delta` on randomized rebalance-shaped move
    /// lists (moves to the hash destination remove the entry, others
    /// pin it) keeps the compiled slab consistent with the owned
    /// `RoutingTable` and the structural invariants intact.
    #[test]
    fn apply_delta_keeps_table_and_slab_in_lockstep(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u64..64, 0u32..4), 1..32),
            1..12,
        ),
    ) {
        let n_tasks = 4usize;
        let mut f = AssignmentFn::with_table(n_tasks, RoutingTable::default());
        for round in rounds {
            let moves: Vec<(Key, TaskId)> = round
                .into_iter()
                .map(|(k, d)| (Key(k), TaskId(d)))
                .collect();
            f.apply_delta(moves.iter().copied());
            prop_assert_eq!(f.compiled().len(), f.table().len());
            for (k, d) in f.table().iter() {
                prop_assert_eq!(f.compiled().lookup(k), Some(d));
                prop_assert_ne!(d, f.hash_route(k), "redundant entry survived");
            }
            prop_assert!(f.compiled().occupied() * 2 <= f.compiled().capacity());
        }
    }
}

/// Regression: sustained delta application whose move-backs tombstone
/// entries and whose re-pins reuse those tombstones — the steady-state
/// rebalance cadence — never lets tombstone debris break the load
/// factor or leave the slab without an empty slot, and the read side
/// stays exact throughout.
#[test]
fn delta_after_tombstone_churn_keeps_invariants() {
    let n_tasks = 6usize;
    let table: RoutingTable = (0..512u64)
        .map(|k| (Key(k), TaskId((k % n_tasks as u64) as u32)))
        .collect();
    let mut f = AssignmentFn::with_table(n_tasks, table);
    let pin =
        |f: &AssignmentFn, k: Key, off: u32| TaskId((f.hash_route(k).0 + 1 + off) % n_tasks as u32);
    for round in 0..200u64 {
        // Half the window moves back to h(k) (tombstoning the slot),
        // half re-pins (filling tombstones left by earlier rounds).
        let lo = (round * 37) % 400;
        let moves: Vec<(Key, TaskId)> = (lo..lo + 64)
            .map(Key)
            .map(|k| {
                if (k.raw() + round) % 2 == 0 {
                    (k, f.hash_route(k))
                } else {
                    (k, pin(&f, k, (round % 4) as u32))
                }
            })
            .collect();
        f.apply_delta(moves.iter().copied());

        let c = f.compiled();
        assert!(
            c.occupied() * 2 <= c.capacity(),
            "round {round}: load factor violated ({} of {})",
            c.occupied(),
            c.capacity()
        );
        assert!(c.occupied() < c.capacity(), "round {round}: no empty slot");
        assert_eq!(c.len(), f.table().len(), "round {round}: len diverged");
    }
    // End state still answers exactly like a fresh build.
    let fresh = CompiledTable::build(f.table());
    for k in (0..512u64).map(Key) {
        assert_eq!(f.compiled().lookup(k), fresh.lookup(k));
    }
}
