//! # streambal-trace
//!
//! The runtime's always-on flight recorder: every thread of the engine
//! (source, each worker, controller, collector, plus the fault injector)
//! holds a [`ThreadRecorder`] that buffers [`TraceEvent`]s locally and
//! batch-appends them to one shared [`TraceSink`]; after teardown the
//! sink yields a merged, time-ordered [`TraceLog`].
//!
//! Design constraints, in order:
//!
//! 1. **The data plane pays nothing measurable.** Workers never stamp a
//!    clock or touch the sink per tuple: [`ThreadRecorder::count_batch`]
//!    is two local counter increments, and the counts are emitted as one
//!    [`EventKind::DataFlush`] per interval. The only lock is the sink
//!    append, taken at most once per buffered-64-events / per interval /
//!    at drop.
//! 2. **Traces are deterministic modulo wall clock.** Every structural
//!    field (span ids = protocol epochs, phases, interval indices,
//!    per-interval tuple counts, fault ledger entries) is decided by the
//!    seeded run, not by thread timing; [`TraceLog::skeleton`] projects
//!    exactly those fields (as a sorted multiset, since cross-thread
//!    *interleaving* is timing) so seeded runs compare under `==` the
//!    same way the fault ledger does.
//! 3. **Spans tell the protocol story.** Every protocol operation
//!    (rebalance, scale-out pre-placement, drain→migrate→retire,
//!    rollback) is a span keyed by its epoch, opened once, stepped
//!    through [`Phase`]s in protocol order, and closed exactly once with
//!    an [`Outcome`] — checked by [`TraceLog::check_integrity`].
//!
//! Exports: [`TraceLog::to_jsonl`] (one JSON object per line, the
//! `tracecat` input format) and [`TraceLog::to_chrome_json`] (Chrome
//! `trace_event` JSON for `chrome://tracing` / Perfetto: spans as async
//! b/e pairs, faults and phases as instants, snapshots as counters).

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which runtime thread emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadLabel {
    /// The source ("tuples router") thread.
    Source,
    /// The controller (protocol) thread.
    Controller,
    /// The collector / merge thread.
    Collector,
    /// The fault injector (events mirrored from the fault ledger; their
    /// `seq` is the ledger index, so ledger order survives the merge).
    Fault,
    /// Worker thread for the given slot.
    Worker(u32),
}

impl ThreadLabel {
    /// Stable textual name (`"worker:3"`, `"controller"`, …) — used in
    /// the JSONL export and skeleton strings.
    pub fn name(&self) -> String {
        match self {
            ThreadLabel::Source => "source".to_string(),
            ThreadLabel::Controller => "controller".to_string(),
            ThreadLabel::Collector => "collector".to_string(),
            ThreadLabel::Fault => "fault".to_string(),
            ThreadLabel::Worker(i) => format!("worker:{i}"),
        }
    }

    /// Parses [`ThreadLabel::name`] output back.
    pub fn from_name(s: &str) -> Option<ThreadLabel> {
        match s {
            "source" => Some(ThreadLabel::Source),
            "controller" => Some(ThreadLabel::Controller),
            "collector" => Some(ThreadLabel::Collector),
            "fault" => Some(ThreadLabel::Fault),
            other => other
                .strip_prefix("worker:")
                .and_then(|n| n.parse().ok())
                .map(ThreadLabel::Worker),
        }
    }

    /// Chrome-trace thread id: fixed slots for the singleton threads,
    /// workers at `10 + slot` so the tracks sort stably.
    pub fn tid(&self) -> u64 {
        match self {
            ThreadLabel::Source => 0,
            ThreadLabel::Controller => 1,
            ThreadLabel::Collector => 2,
            ThreadLabel::Fault => 3,
            ThreadLabel::Worker(i) => 10 + u64::from(*i),
        }
    }
}

/// What kind of protocol operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpLabel {
    /// A plan-driven key migration (steps ③–⑦ of Fig. 5).
    Rebalance,
    /// A scale-out executing its pre-placement plan inside the
    /// quiescence window.
    ScaleOut,
    /// A drain→migrate→retire scale-in.
    ScaleIn,
    /// The synchronous re-install + resume an aborted op rolls back
    /// through (runs under its own fresh epoch).
    Rollback,
    /// A hot key being salted across replica slots (degenerate
    /// migration: pause → install split view → resume, no state moves).
    Split,
    /// A split dissolving: replica partial state consolidates onto the
    /// key's primary through the full migrate machinery.
    Unsplit,
}

impl OpLabel {
    /// Stable textual name.
    pub fn as_str(&self) -> &'static str {
        match self {
            OpLabel::Rebalance => "rebalance",
            OpLabel::ScaleOut => "scale_out",
            OpLabel::ScaleIn => "scale_in",
            OpLabel::Rollback => "rollback",
            OpLabel::Split => "split",
            OpLabel::Unsplit => "unsplit",
        }
    }

    /// Parses [`OpLabel::as_str`] output back.
    pub fn from_name(s: &str) -> Option<OpLabel> {
        match s {
            "rebalance" => Some(OpLabel::Rebalance),
            "scale_out" => Some(OpLabel::ScaleOut),
            "scale_in" => Some(OpLabel::ScaleIn),
            "rollback" => Some(OpLabel::Rollback),
            "split" => Some(OpLabel::Split),
            "unsplit" => Some(OpLabel::Unsplit),
            _ => None,
        }
    }
}

/// A protocol phase inside a span, in protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The plan is computed / the op dequeued.
    Plan,
    /// `Pause` sent to the source; waiting for its ack.
    Pause,
    /// Markers (`MigrateOut` / `Retire`) enqueued behind the paused
    /// keys' backlogs; waiting for the drain.
    QuiesceWait,
    /// Extracted state is arriving at the controller.
    StateOut,
    /// `StateInstall` sent to the destinations; waiting for acks.
    Install,
    /// `Resume` sent to the source under the new view.
    Resume,
}

impl Phase {
    /// All phases, in protocol order.
    pub const ALL: [Phase; 6] = [
        Phase::Plan,
        Phase::Pause,
        Phase::QuiesceWait,
        Phase::StateOut,
        Phase::Install,
        Phase::Resume,
    ];

    /// Position in protocol order (0 = first).
    pub fn rank(&self) -> u8 {
        match self {
            Phase::Plan => 0,
            Phase::Pause => 1,
            Phase::QuiesceWait => 2,
            Phase::StateOut => 3,
            Phase::Install => 4,
            Phase::Resume => 5,
        }
    }

    /// Stable textual name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Pause => "pause",
            Phase::QuiesceWait => "quiesce_wait",
            Phase::StateOut => "state_out",
            Phase::Install => "install",
            Phase::Resume => "resume",
        }
    }

    /// Parses [`Phase::as_str`] output back.
    pub fn from_name(s: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.as_str() == s)
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The op ran to its `ResumeAck` (or synchronous completion).
    Completed,
    /// The op exhausted its deadline retries and was rolled back.
    Aborted,
    /// The run tore down with the op still in flight (shutdown gate).
    Abandoned,
}

impl Outcome {
    /// Stable textual name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Aborted => "aborted",
            Outcome::Abandoned => "abandoned",
        }
    }

    /// Parses [`Outcome::as_str`] output back.
    pub fn from_name(s: &str) -> Option<Outcome> {
        match s {
            "completed" => Some(Outcome::Completed),
            "aborted" => Some(Outcome::Aborted),
            "abandoned" => Some(Outcome::Abandoned),
            _ => None,
        }
    }
}

/// One trace event's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A protocol span opened (`span` = the op's epoch).
    SpanOpen {
        /// Span id: the protocol epoch.
        span: u64,
        /// What kind of operation this is.
        op: OpLabel,
    },
    /// The span entered a protocol phase.
    SpanPhase {
        /// Span id.
        span: u64,
        /// The phase entered.
        phase: Phase,
    },
    /// The span closed.
    SpanClose {
        /// Span id.
        span: u64,
        /// How it ended.
        outcome: Outcome,
    },
    /// A fault-ledger entry, mirrored into the trace (the event's `seq`
    /// is the ledger index).
    Fault {
        /// The ledger entry's `Display` rendering.
        detail: String,
    },
    /// Per-interval controller telemetry, emitted when a statistics
    /// round closes.
    Snapshot {
        /// The closed interval.
        interval: u64,
        /// Per-worker tuple loads this interval (dead slots read 0).
        loads: Vec<u64>,
        /// Per-worker queue depth (tuple-weighted channel occupancy).
        queues: Vec<u64>,
        /// Mean end-to-end latency of the interval (µs).
        mean_latency_us: f64,
        /// p99 end-to-end latency of the interval (µs).
        p99_latency_us: f64,
    },
    /// Per-interval source-side telemetry: routing-table shape and
    /// batch-buffer pool occupancy.
    RouterSnapshot {
        /// The interval just finished.
        interval: u64,
        /// Live routing-table entries (0 for table-less routers).
        table_entries: u64,
        /// Tombstone debris in the compiled table.
        table_tombstones: u64,
        /// Pooled batch buffers currently held by the source.
        pool_buffers: u64,
    },
    /// A worker's per-interval data-plane roll-up: the batch-granularity
    /// counters accumulated by [`ThreadRecorder::count_batch`], emitted
    /// once per interval (never per tuple).
    DataFlush {
        /// The interval the counts belong to.
        interval: u64,
        /// Tuples processed this interval.
        tuples: u64,
        /// Batches those tuples arrived in.
        batches: u64,
    },
    /// The source finished feeding an interval.
    IntervalEnd {
        /// The finished interval.
        interval: u64,
        /// Tuples fed during it.
        tuples: u64,
    },
    /// A free-form structural marker.
    Mark {
        /// The marker label.
        label: String,
    },
}

/// One event: a wall-clock stamp, a per-thread sequence number, the
/// emitting thread, and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the sink's epoch (engine start). Wall clock:
    /// masked by [`TraceLog::skeleton`].
    pub at_us: u64,
    /// Per-thread monotonic sequence number (for [`ThreadLabel::Fault`]
    /// events: the fault-ledger index, so ledger order is canonical).
    pub seq: u64,
    /// The emitting thread.
    pub thread: ThreadLabel,
    /// The payload.
    pub kind: EventKind,
}

/// The shared collection point all [`ThreadRecorder`]s append to.
///
/// Created once per engine run (enabled or not); recorders are handed
/// out per thread; [`TraceSink::take_log`] merges everything after the
/// threads joined.
#[derive(Debug)]
pub struct TraceSink {
    enabled: bool,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

/// A recorder's local buffer flushes to the sink at this many events.
const FLUSH_CAP: usize = 64;

impl TraceSink {
    /// A new sink; `enabled = false` turns every recorder handed out
    /// into a no-op (the recorder-off arm of the overhead bench).
    pub fn new(enabled: bool) -> Arc<TraceSink> {
        Arc::new(TraceSink {
            enabled,
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        })
    }

    /// A disabled sink — the default for contexts without an engine run
    /// (unit tests constructing workers directly).
    pub fn disabled() -> Arc<TraceSink> {
        TraceSink::new(false)
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Microseconds since the sink was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// A recorder for one thread. Cheap; each thread owns its own.
    pub fn recorder(self: &Arc<Self>, thread: ThreadLabel) -> ThreadRecorder {
        ThreadRecorder {
            sink: Arc::clone(self),
            thread,
            enabled: self.enabled,
            seq: 0,
            interval: 0,
            pending_tuples: 0,
            pending_batches: 0,
            buf: Vec::new(),
        }
    }

    /// Mirrors one fault-ledger entry (`seq` = its ledger index, stamped
    /// inside the ledger lock by the caller so ledger order is the
    /// canonical order even if sink appends race).
    pub fn fault(&self, seq: u64, detail: String) {
        if !self.enabled {
            return;
        }
        let ev = TraceEvent {
            at_us: self.now_us(),
            seq,
            thread: ThreadLabel::Fault,
            kind: EventKind::Fault { detail },
        };
        self.lock_events().push(ev);
    }

    /// Takes the merged log, sorted by `(at_us, thread, seq)`. Call
    /// after every recorder-owning thread has joined (their `Drop`
    /// flushes stragglers).
    pub fn take_log(&self) -> TraceLog {
        let mut events = std::mem::take(&mut *self.lock_events());
        events.sort_by_key(|e| (e.at_us, e.thread.tid(), e.seq));
        TraceLog { events }
    }

    fn lock_events(&self) -> std::sync::MutexGuard<'_, Vec<TraceEvent>> {
        // A panicked recorder thread poisons nothing we care about: the
        // vector is append-only and every element was fully written
        // before the push returned.
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One thread's handle on the recorder: a local event buffer plus the
/// batch-granularity data-plane counters.
///
/// The data-plane contract (lint rule L007): hot loops call
/// [`ThreadRecorder::count_batch`] only — no per-tuple events, no
/// clock reads, no locks. Everything else (spans, snapshots, marks) is
/// control-plane rate.
#[derive(Debug)]
pub struct ThreadRecorder {
    sink: Arc<TraceSink>,
    thread: ThreadLabel,
    enabled: bool,
    seq: u64,
    /// The interval the pending counters belong to (advanced by
    /// [`ThreadRecorder::close_interval`]; used by `Drop` to label a
    /// straggler flush).
    interval: u64,
    pending_tuples: u64,
    pending_batches: u64,
    buf: Vec<TraceEvent>,
}

impl ThreadRecorder {
    /// Data-plane hook: account one batch of `tuples`. Two integer
    /// adds — no clock, no allocation, no lock.
    #[inline]
    pub fn count_batch(&mut self, tuples: u64) {
        self.pending_tuples += tuples;
        self.pending_batches += 1;
    }

    /// Closes an interval: emits one [`EventKind::DataFlush`] carrying
    /// the counters accumulated since the last close, and flushes the
    /// local buffer to the sink.
    pub fn close_interval(&mut self, interval: u64) {
        if self.pending_tuples > 0 || self.pending_batches > 0 {
            let tuples = std::mem::take(&mut self.pending_tuples);
            let batches = std::mem::take(&mut self.pending_batches);
            self.event(EventKind::DataFlush {
                interval,
                tuples,
                batches,
            });
        }
        self.interval = interval + 1;
        self.flush();
    }

    /// Opens a protocol span (id = the op's epoch).
    pub fn span_open(&mut self, span: u64, op: OpLabel) {
        self.event(EventKind::SpanOpen { span, op });
    }

    /// Marks a span entering `phase`.
    pub fn span_phase(&mut self, span: u64, phase: Phase) {
        self.event(EventKind::SpanPhase { span, phase });
    }

    /// Closes a span.
    pub fn span_close(&mut self, span: u64, outcome: Outcome) {
        self.event(EventKind::SpanClose { span, outcome });
    }

    /// Emits a controller telemetry snapshot for a closed interval.
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &mut self,
        interval: u64,
        loads: Vec<u64>,
        queues: Vec<u64>,
        mean_latency_us: f64,
        p99_latency_us: f64,
    ) {
        self.event(EventKind::Snapshot {
            interval,
            loads,
            queues,
            mean_latency_us,
            p99_latency_us,
        });
    }

    /// Emits a source-side router/pool snapshot.
    pub fn router_snapshot(
        &mut self,
        interval: u64,
        table_entries: u64,
        table_tombstones: u64,
        pool_buffers: u64,
    ) {
        self.event(EventKind::RouterSnapshot {
            interval,
            table_entries,
            table_tombstones,
            pool_buffers,
        });
    }

    /// Emits the source's end-of-interval event.
    pub fn interval_end(&mut self, interval: u64, tuples: u64) {
        self.event(EventKind::IntervalEnd { interval, tuples });
    }

    /// Emits a free-form marker.
    pub fn mark(&mut self, label: impl Into<String>) {
        self.event(EventKind::Mark {
            label: label.into(),
        });
    }

    fn event(&mut self, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let at_us = self.sink.now_us();
        let seq = self.seq;
        self.seq += 1;
        self.buf.push(TraceEvent {
            at_us,
            seq,
            thread: self.thread,
            kind,
        });
        if self.buf.len() >= FLUSH_CAP {
            self.flush();
        }
    }

    /// Pushes the local buffer to the sink.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.sink.lock_events().append(&mut self.buf);
    }
}

impl Drop for ThreadRecorder {
    fn drop(&mut self) {
        // A killed worker's partial interval still gets its roll-up
        // (the counts cover only tuples fully processed before the
        // death marker, which FIFO makes deterministic).
        if self.enabled && (self.pending_tuples > 0 || self.pending_batches > 0) {
            let interval = self.interval;
            let tuples = std::mem::take(&mut self.pending_tuples);
            let batches = std::mem::take(&mut self.pending_batches);
            self.event(EventKind::DataFlush {
                interval,
                tuples,
                batches,
            });
        }
        self.flush();
    }
}

/// A finished span, reconstructed from the log: open/close stamps plus
/// phase entry stamps.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    /// Span id (the protocol epoch).
    pub span: u64,
    /// The op kind.
    pub op: OpLabel,
    /// How it closed (`None` when the log has no close — an integrity
    /// violation [`TraceLog::check_integrity`] reports).
    pub outcome: Option<Outcome>,
    /// Open stamp (µs since engine start).
    pub open_us: u64,
    /// Close stamp; equals `open_us` when no close was recorded.
    pub close_us: u64,
    /// Phase entry stamps, in log order.
    pub phases: Vec<(Phase, u64)>,
}

impl SpanSummary {
    /// The span's total disruption window (µs).
    pub fn disruption_us(&self) -> u64 {
        self.close_us.saturating_sub(self.open_us)
    }

    /// Per-phase durations: each phase runs from its entry stamp to the
    /// next phase's entry (or the close).
    pub fn phase_durations(&self) -> Vec<(Phase, u64)> {
        let mut out = Vec::with_capacity(self.phases.len());
        for (i, &(phase, at)) in self.phases.iter().enumerate() {
            let end = self
                .phases
                .get(i + 1)
                .map(|&(_, next)| next)
                .unwrap_or(self.close_us);
            out.push((phase, end.saturating_sub(at)));
        }
        out
    }
}

/// The merged, time-ordered event stream of one engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Events sorted by `(at_us, thread, seq)`.
    pub events: Vec<TraceEvent>,
}

impl TraceLog {
    /// The deterministic projection of the trace: every structural field
    /// (span ids, phases, outcomes, fault ledger entries by index,
    /// interval indices, per-interval tuple counts) with wall-clock
    /// stamps and timing-dependent telemetry numbers masked, as a
    /// *sorted* multiset of strings — cross-thread interleaving is
    /// timing, so order across threads is not part of the contract.
    /// Seeded runs produce equal skeletons (asserted like the fault
    /// ledger).
    ///
    /// Masked besides timestamps: [`EventKind::DataFlush`] events
    /// entirely — both their cadence (occupancy-driven: a flush fires
    /// on `FLUSH_CAP` batches or interval close, whichever lands first)
    /// and their interval attribution (tuples routed to a worker around
    /// a kill or interval boundary land where the races fall) are wall
    /// clock in disguise; the deterministic per-interval totals live in
    /// the source's [`EventKind::IntervalEnd`]. Likewise all numeric
    /// telemetry in [`EventKind::Snapshot`] / [`EventKind::RouterSnapshot`]
    /// (load split across racing rebalances).
    pub fn skeleton(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::DataFlush { .. }))
            .map(|e| match &e.kind {
                EventKind::SpanOpen { span, op } => {
                    format!("span {span} open {}", op.as_str())
                }
                EventKind::SpanPhase { span, phase } => {
                    format!("span {span} phase {}", phase.as_str())
                }
                EventKind::SpanClose { span, outcome } => {
                    format!("span {span} close {}", outcome.as_str())
                }
                EventKind::Fault { detail } => format!("fault {} {detail}", e.seq),
                EventKind::Snapshot { interval, .. } => format!("snapshot {interval}"),
                EventKind::RouterSnapshot { interval, .. } => format!("router {interval}"),
                // Filtered above; unreachable but kept total for match.
                EventKind::DataFlush { .. } => String::new(),
                EventKind::IntervalEnd { interval, tuples } => {
                    format!("interval {interval} end {tuples}")
                }
                EventKind::Mark { label } => format!("mark {} {label}", e.thread.name()),
            })
            .collect();
        out.sort();
        out
    }

    /// Validates the span lifecycle: every span id is opened exactly
    /// once (before any of its other events), closed exactly once (after
    /// all of them), and its phases' first entries respect protocol
    /// order. Returns a list of problems; empty = clean.
    pub fn check_integrity(&self) -> Vec<String> {
        use std::collections::BTreeMap;
        #[derive(Default)]
        struct Acc {
            opens: u32,
            closes: u32,
            /// Events in log order: 0 = open, 1 = phase, 2 = close.
            order: Vec<(u8, Option<Phase>)>,
        }
        let mut spans: BTreeMap<u64, Acc> = BTreeMap::new();
        for e in &self.events {
            match &e.kind {
                EventKind::SpanOpen { span, .. } => {
                    let a = spans.entry(*span).or_default();
                    a.opens += 1;
                    a.order.push((0, None));
                }
                EventKind::SpanPhase { span, phase } => {
                    spans
                        .entry(*span)
                        .or_default()
                        .order
                        .push((1, Some(*phase)));
                }
                EventKind::SpanClose { span, .. } => {
                    let a = spans.entry(*span).or_default();
                    a.closes += 1;
                    a.order.push((2, None));
                }
                _ => {}
            }
        }
        let mut problems = Vec::new();
        for (span, a) in &spans {
            if a.opens != 1 {
                problems.push(format!("span {span}: opened {} times (want 1)", a.opens));
            }
            if a.closes != 1 {
                problems.push(format!("span {span}: closed {} times (want 1)", a.closes));
            }
            if a.order.first().map(|&(t, _)| t) != Some(0) {
                problems.push(format!("span {span}: first event is not its open"));
            }
            if a.order.last().map(|&(t, _)| t) != Some(2) {
                problems.push(format!("span {span}: last event is not its close"));
            }
            let mut last_rank: Option<u8> = None;
            for (t, phase) in &a.order {
                if *t != 1 {
                    continue;
                }
                let Some(p) = phase else { continue };
                let r = p.rank();
                if let Some(prev) = last_rank {
                    if r <= prev {
                        problems.push(format!(
                            "span {span}: phase {} out of protocol order",
                            p.as_str()
                        ));
                    }
                }
                last_rank = Some(r);
            }
        }
        problems
    }

    /// Reconstructs one [`SpanSummary`] per span id, in span-id order.
    pub fn span_summaries(&self) -> Vec<SpanSummary> {
        use std::collections::BTreeMap;
        let mut spans: BTreeMap<u64, SpanSummary> = BTreeMap::new();
        for e in &self.events {
            match &e.kind {
                EventKind::SpanOpen { span, op } => {
                    let s = spans.entry(*span).or_insert(SpanSummary {
                        span: *span,
                        op: *op,
                        outcome: None,
                        open_us: e.at_us,
                        close_us: e.at_us,
                        phases: Vec::new(),
                    });
                    s.op = *op;
                    s.open_us = e.at_us;
                    if s.close_us < s.open_us {
                        s.close_us = s.open_us;
                    }
                }
                EventKind::SpanPhase { span, phase } => {
                    if let Some(s) = spans.get_mut(span) {
                        s.phases.push((*phase, e.at_us));
                    }
                }
                EventKind::SpanClose { span, outcome } => {
                    if let Some(s) = spans.get_mut(span) {
                        s.outcome = Some(*outcome);
                        s.close_us = e.at_us;
                    }
                }
                _ => {}
            }
        }
        spans.into_values().collect()
    }

    /// Exports one JSON object per line (the `tracecat` input format).
    ///
    /// Schema per line: `at_us`, `seq`, `thread` (a
    /// [`ThreadLabel::name`] string), `kind` (a discriminator string),
    /// plus the kind's own fields. Non-finite floats render as `null`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"at_us\":{},\"seq\":{},\"thread\":\"{}\",",
                e.at_us,
                e.seq,
                e.thread.name()
            );
            match &e.kind {
                EventKind::SpanOpen { span, op } => {
                    let _ = write!(
                        out,
                        "\"kind\":\"span_open\",\"span\":{span},\"op\":\"{}\"",
                        op.as_str()
                    );
                }
                EventKind::SpanPhase { span, phase } => {
                    let _ = write!(
                        out,
                        "\"kind\":\"span_phase\",\"span\":{span},\"phase\":\"{}\"",
                        phase.as_str()
                    );
                }
                EventKind::SpanClose { span, outcome } => {
                    let _ = write!(
                        out,
                        "\"kind\":\"span_close\",\"span\":{span},\"outcome\":\"{}\"",
                        outcome.as_str()
                    );
                }
                EventKind::Fault { detail } => {
                    let _ = write!(out, "\"kind\":\"fault\",\"detail\":\"{}\"", esc(detail));
                }
                EventKind::Snapshot {
                    interval,
                    loads,
                    queues,
                    mean_latency_us,
                    p99_latency_us,
                } => {
                    let _ = write!(
                        out,
                        "\"kind\":\"snapshot\",\"interval\":{interval},\"loads\":{},\"queues\":{},\
                         \"mean_latency_us\":{},\"p99_latency_us\":{}",
                        int_arr(loads),
                        int_arr(queues),
                        fnum(*mean_latency_us),
                        fnum(*p99_latency_us)
                    );
                }
                EventKind::RouterSnapshot {
                    interval,
                    table_entries,
                    table_tombstones,
                    pool_buffers,
                } => {
                    let _ = write!(
                        out,
                        "\"kind\":\"router_snapshot\",\"interval\":{interval},\
                         \"table_entries\":{table_entries},\"table_tombstones\":{table_tombstones},\
                         \"pool_buffers\":{pool_buffers}"
                    );
                }
                EventKind::DataFlush {
                    interval,
                    tuples,
                    batches,
                } => {
                    let _ = write!(
                        out,
                        "\"kind\":\"data_flush\",\"interval\":{interval},\"tuples\":{tuples},\
                         \"batches\":{batches}"
                    );
                }
                EventKind::IntervalEnd { interval, tuples } => {
                    let _ = write!(
                        out,
                        "\"kind\":\"interval_end\",\"interval\":{interval},\"tuples\":{tuples}"
                    );
                }
                EventKind::Mark { label } => {
                    let _ = write!(out, "\"kind\":\"mark\",\"label\":\"{}\"", esc(label));
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Exports Chrome `trace_event` JSON (open in `chrome://tracing` or
    /// Perfetto): spans as async `b`/`e` pairs keyed by span id, phases
    /// and faults as instants, snapshots as counter tracks.
    pub fn to_chrome_json(&self) -> String {
        let mut evs: Vec<String> = Vec::with_capacity(self.events.len() * 2);
        let meta = |tid: u64, name: &str| {
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            )
        };
        let mut seen_threads: Vec<ThreadLabel> = Vec::new();
        for e in &self.events {
            if !seen_threads.contains(&e.thread) {
                seen_threads.push(e.thread);
                evs.push(meta(e.thread.tid(), &e.thread.name()));
            }
            let tid = e.thread.tid();
            let ts = e.at_us;
            match &e.kind {
                EventKind::SpanOpen { span, op } => evs.push(format!(
                    "{{\"ph\":\"b\",\"cat\":\"protocol\",\"id\":{span},\"name\":\"{}\",\
                     \"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                    op.as_str()
                )),
                EventKind::SpanClose { span, outcome } => evs.push(format!(
                    "{{\"ph\":\"e\",\"cat\":\"protocol\",\"id\":{span},\"name\":\"span\",\
                     \"ts\":{ts},\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"outcome\":\"{}\"}}}}",
                    outcome.as_str()
                )),
                EventKind::SpanPhase { span, phase } => evs.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"p\",\"cat\":\"protocol\",\
                     \"name\":\"{}#{span}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                    phase.as_str()
                )),
                EventKind::Fault { detail } => evs.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"g\",\"cat\":\"fault\",\"name\":\"{}\",\
                     \"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                    esc(detail)
                )),
                EventKind::Snapshot {
                    loads,
                    queues,
                    p99_latency_us,
                    ..
                } => {
                    let args = |xs: &[u64]| {
                        let mut s = String::new();
                        for (i, x) in xs.iter().enumerate() {
                            if i > 0 {
                                s.push(',');
                            }
                            let _ = write!(s, "\"w{i}\":{x}");
                        }
                        s
                    };
                    evs.push(format!(
                        "{{\"ph\":\"C\",\"name\":\"load\",\"ts\":{ts},\"pid\":1,\
                         \"args\":{{{}}}}}",
                        args(loads)
                    ));
                    evs.push(format!(
                        "{{\"ph\":\"C\",\"name\":\"queue\",\"ts\":{ts},\"pid\":1,\
                         \"args\":{{{}}}}}",
                        args(queues)
                    ));
                    evs.push(format!(
                        "{{\"ph\":\"C\",\"name\":\"p99_latency_us\",\"ts\":{ts},\"pid\":1,\
                         \"args\":{{\"p99\":{}}}}}",
                        fnum(*p99_latency_us)
                    ));
                }
                EventKind::RouterSnapshot {
                    table_entries,
                    table_tombstones,
                    pool_buffers,
                    ..
                } => evs.push(format!(
                    "{{\"ph\":\"C\",\"name\":\"router\",\"ts\":{ts},\"pid\":1,\
                     \"args\":{{\"entries\":{table_entries},\"tombstones\":{table_tombstones},\
                     \"pool\":{pool_buffers}}}}}"
                )),
                EventKind::DataFlush {
                    interval,
                    tuples,
                    batches,
                } => evs.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"data\",\
                     \"name\":\"flush#{interval}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"tuples\":{tuples},\"batches\":{batches}}}}}"
                )),
                EventKind::IntervalEnd { interval, tuples } => evs.push(format!(
                    "{{\"ph\":\"C\",\"name\":\"interval_tuples\",\"ts\":{ts},\"pid\":1,\
                     \"args\":{{\"tuples\":{tuples},\"interval\":{interval}}}}}"
                )),
                EventKind::Mark { label } => evs.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"g\",\"cat\":\"mark\",\"name\":\"{}\",\
                     \"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                    esc(label)
                )),
            }
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in evs.iter().enumerate() {
            out.push_str(e);
            if i + 1 < evs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// Renders a `u64` slice as a JSON array.
fn int_arr(xs: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{x}");
    }
    s.push(']');
    s
}

/// Renders a float as JSON: shortest round-trip form, `null` for
/// non-finite (JSON has no NaN/∞).
fn fnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        let sink = TraceSink::new(true);
        let mut ctl = sink.recorder(ThreadLabel::Controller);
        let mut w0 = sink.recorder(ThreadLabel::Worker(0));
        let mut src = sink.recorder(ThreadLabel::Source);

        src.interval_end(0, 100);
        w0.count_batch(60);
        w0.count_batch(40);
        w0.close_interval(0);
        ctl.span_open(1, OpLabel::Rebalance);
        ctl.span_phase(1, Phase::Pause);
        ctl.span_phase(1, Phase::Install);
        ctl.span_phase(1, Phase::Resume);
        ctl.span_close(1, Outcome::Completed);
        ctl.snapshot(0, vec![100, 0], vec![3, 0], 12.5, 40.0);
        src.router_snapshot(0, 7, 1, 4);
        ctl.mark("teardown");
        sink.fault(0, "injected kill: worker 1".to_string());
        drop((ctl, w0, src));
        sink.take_log()
    }

    #[test]
    fn recorder_batches_and_flushes_on_drop() {
        let sink = TraceSink::new(true);
        let mut w = sink.recorder(ThreadLabel::Worker(3));
        w.count_batch(10);
        w.count_batch(5);
        // Nothing reaches the sink before an interval close or drop.
        assert!(sink.lock_events().is_empty());
        drop(w);
        let log = sink.take_log();
        assert_eq!(log.events.len(), 1);
        assert_eq!(
            log.events[0].kind,
            EventKind::DataFlush {
                interval: 0,
                tuples: 15,
                batches: 2
            }
        );
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        let mut w = sink.recorder(ThreadLabel::Worker(0));
        w.count_batch(10);
        w.close_interval(0);
        w.span_open(1, OpLabel::Rebalance);
        sink.fault(0, "x".to_string());
        drop(w);
        assert!(sink.take_log().events.is_empty());
    }

    #[test]
    fn skeleton_masks_wall_clock_but_keeps_structure() {
        let sk = sample_log().skeleton();
        assert!(sk.contains(&"span 1 open rebalance".to_string()));
        assert!(sk.contains(&"span 1 phase pause".to_string()));
        assert!(sk.contains(&"span 1 close completed".to_string()));
        // DataFlush is masked entirely: flush cadence and interval
        // attribution are channel-occupancy artifacts, not structure.
        assert!(!sk.iter().any(|s| s.starts_with("flush")));
        assert!(sk.contains(&"interval 0 end 100".to_string()));
        assert!(sk.contains(&"snapshot 0".to_string()));
        assert!(sk.contains(&"router 0".to_string()));
        assert!(sk.contains(&"fault 0 injected kill: worker 1".to_string()));
        // Sorted multiset: identical regardless of emission interleaving.
        let mut sorted = sk.clone();
        sorted.sort();
        assert_eq!(sk, sorted);
    }

    #[test]
    fn integrity_accepts_well_formed_spans() {
        assert_eq!(sample_log().check_integrity(), Vec::<String>::new());
    }

    #[test]
    fn integrity_rejects_double_open_missing_close_and_phase_disorder() {
        let sink = TraceSink::new(true);
        let mut ctl = sink.recorder(ThreadLabel::Controller);
        ctl.span_open(1, OpLabel::Rebalance);
        ctl.span_open(1, OpLabel::Rebalance);
        ctl.span_open(2, OpLabel::ScaleIn);
        ctl.span_phase(2, Phase::Install);
        ctl.span_phase(2, Phase::Pause);
        ctl.span_close(2, Outcome::Completed);
        drop(ctl);
        let problems = sink.take_log().check_integrity();
        assert!(problems
            .iter()
            .any(|p| p.contains("span 1") && p.contains("opened 2")));
        assert!(problems
            .iter()
            .any(|p| p.contains("span 1") && p.contains("closed 0")));
        assert!(problems
            .iter()
            .any(|p| p.contains("span 2") && p.contains("out of protocol order")));
    }

    #[test]
    fn span_summaries_compute_phase_durations() {
        let spans = sample_log().span_summaries();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.span, 1);
        assert_eq!(s.op, OpLabel::Rebalance);
        assert_eq!(s.outcome, Some(Outcome::Completed));
        assert!(s.close_us >= s.open_us);
        let phases: Vec<Phase> = s.phase_durations().iter().map(|&(p, _)| p).collect();
        assert_eq!(phases, vec![Phase::Pause, Phase::Install, Phase::Resume]);
    }

    #[test]
    fn jsonl_lines_carry_the_schema() {
        let jsonl = sample_log().to_jsonl();
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"at_us\":"), "{line}");
            assert!(line.contains("\"thread\":"), "{line}");
            assert!(line.contains("\"kind\":"), "{line}");
        }
        assert!(jsonl.contains("\"kind\":\"span_open\""));
        assert!(jsonl.contains("\"kind\":\"data_flush\""));
        assert!(jsonl.contains("\"kind\":\"fault\""));
        assert!(jsonl.contains("\"loads\":[100,0]"));
    }

    #[test]
    fn chrome_export_pairs_span_begin_end() {
        let chrome = sample_log().to_chrome_json();
        assert!(chrome.starts_with("{\"displayTimeUnit\""));
        assert_eq!(chrome.matches("\"ph\":\"b\"").count(), 1);
        assert_eq!(chrome.matches("\"ph\":\"e\"").count(), 1);
        assert!(chrome.contains("\"ph\":\"C\""), "counter tracks present");
        assert!(
            chrome.contains("\"thread_name\""),
            "thread metadata present"
        );
    }

    #[test]
    fn names_round_trip() {
        for t in [
            ThreadLabel::Source,
            ThreadLabel::Controller,
            ThreadLabel::Collector,
            ThreadLabel::Fault,
            ThreadLabel::Worker(7),
        ] {
            assert_eq!(ThreadLabel::from_name(&t.name()), Some(t));
        }
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.as_str()), Some(p));
        }
        for o in [Outcome::Completed, Outcome::Aborted, Outcome::Abandoned] {
            assert_eq!(Outcome::from_name(o.as_str()), Some(o));
        }
        for op in [
            OpLabel::Rebalance,
            OpLabel::ScaleOut,
            OpLabel::ScaleIn,
            OpLabel::Rollback,
            OpLabel::Split,
            OpLabel::Unsplit,
        ] {
            assert_eq!(OpLabel::from_name(op.as_str()), Some(op));
        }
    }

    #[test]
    fn merged_log_sorts_by_time_then_thread() {
        let log = sample_log();
        for w in log.events.windows(2) {
            assert!(
                (w[0].at_us, w[0].thread.tid(), w[0].seq)
                    <= (w[1].at_us, w[1].thread.tid(), w[1].seq)
            );
        }
    }
}
