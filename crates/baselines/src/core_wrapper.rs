//! Adapter exposing `streambal-core`'s strategies through [`Partitioner`].

use streambal_core::{
    BalanceParams, IntervalStats, Key, RebalanceOutcome, RebalanceStrategy, Rebalancer, TaskId,
};

use crate::{Partitioner, RoutingView};

/// Wraps a [`Rebalancer`] so Mixed / MinTable / MinMig / MixedBF / Simple
/// plug into the same simulator and runtime slots as the baselines.
#[derive(Debug)]
pub struct CoreBalancer {
    inner: Rebalancer,
    strategy: RebalanceStrategy,
}

impl CoreBalancer {
    /// Creates a core-strategy partitioner.
    pub fn new(
        n_tasks: usize,
        window: usize,
        strategy: RebalanceStrategy,
        params: BalanceParams,
    ) -> Self {
        CoreBalancer {
            inner: Rebalancer::new(n_tasks, window, strategy, params),
            strategy,
        }
    }

    /// The wrapped rebalancer (for inspection).
    pub fn rebalancer(&self) -> &Rebalancer {
        &self.inner
    }

    /// Overrides the rebalance trigger damping (see
    /// [`streambal_core::TriggerPolicy`]): a cooldown or
    /// consecutive-violation requirement sets the strategy's effective
    /// *rebalance period*, which is exactly the cold-start lag a pinned
    /// scale-out pays while the new instance waits for the next plan.
    pub fn with_trigger_policy(mut self, trigger: streambal_core::TriggerPolicy) -> Self {
        self.inner = self.inner.with_trigger_policy(trigger);
        self
    }
}

impl Partitioner for CoreBalancer {
    fn name(&self) -> String {
        self.strategy.name().into()
    }

    fn n_tasks(&self) -> usize {
        self.inner.assignment().n_tasks()
    }

    #[inline]
    fn route(&mut self, key: Key) -> TaskId {
        self.inner.route(key)
    }

    fn route_batch(&mut self, keys: &[Key], out: &mut Vec<TaskId>) {
        self.inner.route_batch(keys, out);
    }

    fn end_interval(&mut self, stats: IntervalStats) -> Option<RebalanceOutcome> {
        self.inner.end_interval(stats)
    }

    fn add_task(&mut self) -> TaskId {
        self.inner.add_task()
    }

    fn scale_out(&mut self, live: &[Key]) -> TaskId {
        self.inner.scale_out(live.iter().copied())
    }

    fn scale_out_plan(&mut self, live: &[Key]) -> (TaskId, Vec<(Key, TaskId)>) {
        self.inner.scale_out_plan(live.iter().copied())
    }

    fn scale_in(&mut self, victim: TaskId, live: &[Key]) {
        self.inner.scale_in(victim, live.iter().copied());
    }

    fn routing_view(&self) -> RoutingView {
        RoutingView::of_assignment(self.inner.assignment())
    }

    fn last_install_was_delta(&self) -> bool {
        self.inner.last_install_was_delta()
    }

    fn reroute_dead(
        &mut self,
        dead: TaskId,
        is_dead: &dyn Fn(usize) -> bool,
    ) -> Vec<(Key, TaskId)> {
        self.inner.reroute_dead(dead, is_dead)
    }

    fn apply_moves(&mut self, moves: &[(Key, TaskId)]) -> bool {
        self.inner.apply_moves(moves);
        true
    }

    fn split_key(&mut self, key: Key, replicas: &[TaskId]) -> bool {
        self.inner.split_key(key, replicas)
    }

    fn unsplit_key(&mut self, key: Key) -> Option<Vec<TaskId>> {
        self.inner.unsplit_key(key)
    }

    fn splits(&self) -> Vec<(Key, Vec<TaskId>)> {
        self.inner.splits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_mixed_strategy() {
        let mut p = CoreBalancer::new(4, 2, RebalanceStrategy::Mixed, BalanceParams::default());
        assert_eq!(p.name(), "Mixed");
        assert_eq!(p.n_tasks(), 4);
        let mut iv = IntervalStats::new();
        for k in 0..500u64 {
            let cost = if k < 3 { 1000 } else { 2 };
            iv.observe(Key(k), 1, cost, cost);
        }
        let out = p.end_interval(iv);
        assert!(out.is_some(), "skew must trigger the wrapped rebalancer");
        assert_eq!(p.rebalancer().rebalances(), 1);
    }

    #[test]
    fn scale_out_passthrough() {
        let mut p = CoreBalancer::new(2, 1, RebalanceStrategy::MinTable, BalanceParams::default());
        assert_eq!(p.add_task(), TaskId(2));
        assert_eq!(p.n_tasks(), 3);
    }

    /// The pre-placement plan flows through the wrapper: churned live
    /// keys route to the new task, each move naming the old holder.
    #[test]
    fn scale_out_plan_passthrough() {
        let mut p = CoreBalancer::new(3, 1, RebalanceStrategy::Mixed, BalanceParams::default());
        let live: Vec<Key> = (0..1_500u64).map(Key).collect();
        let before: Vec<TaskId> = live.iter().map(|&k| p.route(k)).collect();
        let (new, moves) = p.scale_out_plan(&live);
        assert_eq!(new, TaskId(3));
        assert!(!moves.is_empty(), "a 1500-key population must churn");
        for &(k, holder) in &moves {
            assert_eq!(p.route(k), new);
            let idx = live.iter().position(|&x| x == k).unwrap();
            assert_eq!(holder, before[idx]);
        }
    }

    /// A trigger cooldown damps the wrapped rebalancer: after a plan
    /// fires, nothing may fire for `cooldown` intervals even under
    /// sustained heavy skew.
    #[test]
    fn trigger_policy_passthrough_damps_rebalances() {
        use streambal_core::TriggerPolicy;
        let mut p = CoreBalancer::new(4, 1, RebalanceStrategy::Mixed, BalanceParams::default())
            .with_trigger_policy(TriggerPolicy {
                cooldown: 3,
                consecutive: 1,
            });
        let skewed = || {
            let mut iv = IntervalStats::new();
            for k in 0..500u64 {
                let cost = if k < 3 { 1000 } else { 2 };
                iv.observe(Key(k), 1, cost, cost);
            }
            iv
        };
        assert!(p.end_interval(skewed()).is_some(), "first violation fires");
        for i in 0..3 {
            assert!(
                p.end_interval(skewed()).is_none(),
                "interval {i} inside the cooldown must be damped"
            );
        }
    }
}
