//! Load accounting and balance indicators (paper §II-A).
//!
//! `Lᵢ(d, F) = Σ_{k : F(k)=d} cᵢ(k)` is the load of task `d`;
//! `θᵢ(d, F) = |Lᵢ(d,F) − L̄ᵢ| / L̄ᵢ` its balance indicator. A task is
//! *overloaded* when `L > Lmax = (1+θmax)·L̄`, and the controller triggers
//! a rebalance when any task violates the bound.

use crate::key::TaskId;
use crate::stats::KeyRecord;

/// Per-task load vector plus derived aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSummary {
    /// `Lᵢ(d, F)` per task, indexed by task id.
    pub loads: Vec<u64>,
    /// Mean load `L̄ᵢ`.
    pub mean: f64,
}

impl LoadSummary {
    /// Builds from a raw load vector.
    pub fn new(loads: Vec<u64>) -> Self {
        assert!(!loads.is_empty(), "load summary needs at least one task");
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        LoadSummary { loads, mean }
    }

    /// The overload threshold `Lmax = (1 + θmax) · L̄`.
    #[inline]
    pub fn l_max(&self, theta_max: f64) -> f64 {
        (1.0 + theta_max) * self.mean
    }

    /// Balance indicator `θ(d)` of one task. Zero when the operator is
    /// entirely idle (`L̄ = 0`): an idle operator is trivially balanced.
    pub fn theta(&self, d: TaskId) -> f64 {
        balance_indicator(self.loads[d.index()], self.mean)
    }

    /// The worst balance indicator across tasks.
    pub fn max_theta(&self) -> f64 {
        (0..self.loads.len())
            .map(|i| self.theta(TaskId::from(i)))
            .fold(0.0, f64::max)
    }

    /// The overload cutoff actually compared against: `Lmax` plus a small
    /// epsilon absorbing `(1+θmax)·L̄` rounding, so an exactly-at-bound
    /// task never counts as overloaded.
    #[inline]
    fn lmax_cutoff(&self, theta_max: f64) -> f64 {
        self.l_max(theta_max) + 1e-9
    }

    /// True when any task exceeds `Lmax` — the trigger condition, without
    /// materializing the candidate list.
    pub fn is_overloaded(&self, theta_max: f64) -> bool {
        let cutoff = self.lmax_cutoff(theta_max);
        self.loads.iter().any(|&l| l as f64 > cutoff)
    }

    /// Tasks exceeding `Lmax`, the candidates drained in Phase II.
    pub fn overloaded(&self, theta_max: f64) -> Vec<TaskId> {
        let cutoff = self.lmax_cutoff(theta_max);
        (0..self.loads.len())
            .filter(|&i| self.loads[i] as f64 > cutoff)
            .map(TaskId::from)
            .collect()
    }

    /// The paper's *workload skewness* report metric: `max L(d) / L̄`
    /// (Fig. 7 y-axis). 1.0 is perfect balance; 0 when idle.
    pub fn skewness(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        self.loads.iter().copied().max().unwrap_or(0) as f64 / self.mean
    }
}

/// `θ = |L − L̄| / L̄`, with the idle-operator convention `θ = 0` when
/// `L̄ = 0`.
#[inline]
pub fn balance_indicator(load: u64, mean: f64) -> f64 {
    if mean == 0.0 {
        return 0.0;
    }
    (load as f64 - mean).abs() / mean
}

/// Computes per-task loads from key records under their `current`
/// assignment.
pub fn loads_of(records: &[KeyRecord], n_tasks: usize) -> LoadSummary {
    let mut loads = vec![0u64; n_tasks];
    for r in records {
        loads[r.current.index()] += r.cost;
    }
    LoadSummary::new(loads)
}

/// The trigger predicate evaluated by the controller at each interval end:
/// is any task *overloaded*, i.e. `L(d) > Lmax = (1+θmax)·L̄` (§II-A)?
///
/// Deliberately one-sided. `θ` measures absolute deviation, so a merely
/// *under*-loaded task (a hash gap leaving one worker idle) drives
/// `max θ` past `θmax` without any task exceeding `Lmax`; triggering on
/// that would fire a rebalance — and pay its migration cost — every
/// interval while fixing nothing, since no key move can fill a hash gap
/// the generator never feeds. The paper's controller only reacts to
/// overload, and Phase II only drains tasks above `Lmax`.
pub fn needs_rebalance(summary: &LoadSummary, theta_max: f64) -> bool {
    summary.is_overloaded(theta_max)
}

/// Convenience: `max L(d) / L̄` over an explicit load vector.
pub fn max_skewness(loads: &[u64]) -> f64 {
    LoadSummary::new(loads.to_vec()).skewness()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;

    fn rec(key: u64, cost: u64, current: u32) -> KeyRecord {
        KeyRecord {
            key: Key(key),
            cost,
            mem: 1,
            current: TaskId(current),
            hash_dest: TaskId(current),
        }
    }

    #[test]
    fn loads_accumulate_per_task() {
        let records = vec![rec(1, 5, 0), rec(2, 3, 0), rec(3, 2, 1)];
        let s = loads_of(&records, 3);
        assert_eq!(s.loads, vec![8, 2, 0]);
        assert!((s.mean - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn theta_matches_definition() {
        let s = LoadSummary::new(vec![16, 4]);
        // L̄ = 10; θ(d0) = 6/10, θ(d1) = 6/10.
        assert!((s.theta(TaskId(0)) - 0.6).abs() < 1e-12);
        assert!((s.theta(TaskId(1)) - 0.6).abs() < 1e-12);
        assert!((s.max_theta() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn overloaded_uses_lmax() {
        let s = LoadSummary::new(vec![16, 4, 10]);
        // L̄ = 10, θmax = 0.2 ⇒ Lmax = 12.
        assert_eq!(s.overloaded(0.2), vec![TaskId(0)]);
        assert_eq!(s.overloaded(0.7), Vec::<TaskId>::new());
    }

    #[test]
    fn trigger_predicate() {
        let balanced = LoadSummary::new(vec![10, 10, 10]);
        assert!(!needs_rebalance(&balanced, 0.0));
        let skewed = LoadSummary::new(vec![20, 5, 5]);
        assert!(needs_rebalance(&skewed, 0.08));
        assert!(!needs_rebalance(&skewed, 1.0));
    }

    #[test]
    fn underload_alone_never_triggers() {
        // One idle task (hash gap): max θ = |0 − 75|/75 = 1.0 > θmax, but
        // no task exceeds Lmax = 1.5 · 75 = 112.5. The deviation-based
        // predicate this replaces fired a spurious rebalance every
        // interval here; the documented overload predicate must not.
        let s = LoadSummary::new(vec![0, 100, 100, 100]);
        assert!(s.max_theta() > 0.5, "deviation exceeds θmax by design");
        assert!(s.overloaded(0.5).is_empty());
        assert!(!needs_rebalance(&s, 0.5));
        // The same loads with a genuinely overloaded task still trigger.
        let s = LoadSummary::new(vec![0, 100, 100, 250]);
        assert!(needs_rebalance(&s, 0.5));
    }

    #[test]
    fn trigger_matches_hand_computed_lmax() {
        // Each expectation computed by hand from L̄ and Lmax = (1+θmax)·L̄,
        // independently of the implementation.
        for (loads, theta_max, expect) in [
            (vec![20u64, 5, 5], 0.08, true),      // L̄=10, Lmax=10.8 < 20
            (vec![20, 5, 5], 1.0, false),         // Lmax=20, 20 not > 20
            (vec![10, 10, 10], 0.0, false),       // exactly at the bound
            (vec![1, 0, 0, 0], 0.0, true),        // L̄=0.25, 1 > 0.25
            (vec![1, 0, 0, 0], 2.9, true),        // Lmax=0.975 < 1
            (vec![1, 0, 0, 0], 3.0, false),       // Lmax=1.0, 1 not > 1
            (vec![0, 100, 100, 100], 0.5, false), // L̄=75, Lmax=112.5
        ] {
            let s = LoadSummary::new(loads.clone());
            assert_eq!(
                needs_rebalance(&s, theta_max),
                expect,
                "loads {loads:?}, θmax {theta_max}"
            );
            assert_eq!(
                s.overloaded(theta_max).is_empty(),
                !expect,
                "candidate list must agree: loads {loads:?}, θmax {theta_max}"
            );
        }
    }

    #[test]
    fn skewness_metric() {
        assert!((max_skewness(&[20, 5, 5]) - 2.0).abs() < 1e-12);
        assert!((max_skewness(&[10, 10]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_operator_is_balanced() {
        let s = LoadSummary::new(vec![0, 0, 0]);
        assert_eq!(s.max_theta(), 0.0);
        assert_eq!(s.skewness(), 0.0);
        assert!(!needs_rebalance(&s, 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_loads_panic() {
        LoadSummary::new(vec![]);
    }
}
